"""Synthetic-workload-driven exploration frontiers.

This module closes the loop between the synthesis subsystem and the
cross-layer exploration engine: one seeded call goes profile -> synthetic
injection campaigns -> :class:`VulnerabilityMap` -> sharded schedule
evaluation -> :class:`ParetoFrontier`, making the paper's Fig. 1(d)-style
cost/improvement cloud computable for *any* synthesized scenario family,
not just the 18 fixed benchmarks.

Both stages ride the engine's payload+shard executor layer --
``sweep_workers`` fans the injection campaigns out per workload,
``exploration_workers`` shards the combination pool -- and both are
bit-identical across serial and process-pool execution, so the resulting
frontier (labels included, thanks to the deterministic coordinate
tie-break) is a pure function of the seed and parameters.  Frontiers can be
persisted alongside their sweep metadata (:mod:`repro.analysis.store`) for
cross-run comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.pareto import ParetoFrontier
from repro.analysis.store import save_frontier
from repro.core.exploration import CrossLayerExplorer
from repro.core.improvement import ResilienceTarget, sdc_targets
from repro.engine.engine import EngineConfig
from repro.microarch.core import BaseCore
from repro.obs import manifest_dict
from repro.workloads import suite as registry
from repro.workloads.synthesis.sweep import SyntheticSweepResult, run_synthetic_sweep


@dataclass
class SyntheticFrontierResult:
    """One synthetic sweep plus the Pareto frontier explored on top of it."""

    sweep: SyntheticSweepResult
    frontier: ParetoFrontier
    metadata: dict = field(default_factory=dict)
    manifest: dict = field(default_factory=dict)

    def save(self, path: str | Path) -> Path:
        """Persist the frontier (with sweep metadata and the run's
        provenance manifest) for cross-run merges."""
        return save_frontier(path, self.frontier, metadata=self.metadata,
                             manifest=self.manifest or None)


def explorer_for_sweep(core: BaseCore, sweep: SyntheticSweepResult,
                       ) -> CrossLayerExplorer:
    """A cross-layer explorer driven by a sweep's measured vulnerability.

    The sweep's synthetic workload names become the explorer's benchmark
    list, so vulnerability profiles, schedules and frontiers are all
    *workload-dependent* in exactly the sense the paper argues they must be.
    """
    if sweep.core_name != core.name:
        raise ValueError(
            f"sweep was measured on {sweep.core_name!r} but the explorer "
            f"was asked to plan for {core.name!r}; vulnerability maps are "
            f"core-specific")
    return CrossLayerExplorer(core.registry, sweep.vulnerability,
                              benchmarks=sweep.workload_names)


def frontier_from_sweep(core: BaseCore, sweep: SyntheticSweepResult,
                        targets: list[ResilienceTarget] | None = None,
                        combinations: list | None = None,
                        workers: int = 1, metric: str = "sdc") -> ParetoFrontier:
    """Stream a sweep-driven combination evaluation into a Pareto frontier."""
    explorer = explorer_for_sweep(core, sweep)
    return explorer.explore_frontier(targets=targets, combinations=combinations,
                                     workers=workers, metric=metric)


def explore_synthetic_frontier(core: BaseCore, seed: int = 0,
                               per_family: int = 4,
                               injections_per_workload: int = 40,
                               families: list[str] | None = None,
                               config: EngineConfig | None = None,
                               targets: list[ResilienceTarget] | None = None,
                               combinations: list | None = None,
                               sweep_workers: int = 1,
                               exploration_workers: int = 1,
                               metric: str = "sdc",
                               store_path: str | Path | None = None,
                               **profile_overrides) -> SyntheticFrontierResult:
    """The single seeded synthesis-to-frontier call.

    Generates the synthetic suite, measures per-flip-flop vulnerability
    through the (optionally sharded) injection engine, evaluates the
    cross-layer combination pool against that measured map from incremental
    improvement/cost curves, and folds the results into a dominance-pruned
    Pareto frontier.  ``store_path`` persists the frontier plus its sweep
    metadata on the way out.

    Every stage derives its randomness from ``seed`` alone, so the returned
    frontier is bit-identical for any ``sweep_workers`` /
    ``exploration_workers`` choice.
    """
    sweep = run_synthetic_sweep(core, seed=seed, per_family=per_family,
                                injections_per_workload=injections_per_workload,
                                families=families, config=config,
                                workers=sweep_workers, **profile_overrides)
    swept_targets = targets if targets is not None else sdc_targets()
    frontier = frontier_from_sweep(core, sweep, targets=swept_targets,
                                   combinations=combinations,
                                   workers=exploration_workers, metric=metric)
    metadata = {
        "kind": "synthetic-frontier",
        "core": core.name,
        "seed": seed,
        "per_family": per_family,
        "injections_per_workload": injections_per_workload,
        "families": (list(families) if families is not None
                     else registry.family_names()),
        "profile_overrides": dict(profile_overrides),
        "targets": [target.label for target in swept_targets],
        "metric": metric,
        "workloads": len(sweep.workload_names),
        "swept_points": frontier.seen,
    }
    if sweep.cache_stats is not None:
        stats = sweep.cache_stats
        metadata["golden_cache"] = {
            "hits": stats.hits, "misses": stats.misses,
            "artifacts_loaded": stats.artifacts_loaded,
            "artifacts_saved": stats.artifacts_saved,
            "recorded": stats.recorded,
        }
    if sweep.store_stats is not None:
        store = sweep.store_stats
        metadata["artifact_store"] = {
            "entries": store.entries, "size_bytes": store.size_bytes,
            "loaded": store.loaded, "saved": store.saved,
            "errors": store.errors,
        }
    manifest = manifest_dict(seed=seed, core=core, config=config,
                             kind="synthetic-frontier", metric=metric)
    result = SyntheticFrontierResult(sweep=sweep, frontier=frontier,
                                     metadata=metadata, manifest=manifest)
    if store_path is not None:
        result.save(store_path)
    return result
