"""Workload profiles: the constrained-random generator's specification.

A :class:`WorkloadProfile` pins down everything the program synthesizer may
randomise -- instruction mix, loop-nest shape, data-section size and a target
cycle budget -- so that one (profile, seed) pair always denotes exactly one
program.  Profiles are immutable value objects; derive variants with
:meth:`WorkloadProfile.evolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MIN_DATA_WORDS = 8
MAX_DATA_WORDS = 4096
MAX_LOOP_DEPTH = 3
MIN_TARGET_CYCLES = 200
MAX_TARGET_CYCLES = 1_000_000
"""Upper cycle-budget bound, comfortably under the engine's 2M-cycle
golden-run watchdog and the oracle simulator's instruction limit."""

EPILOGUE_INSTRUCTIONS_PER_WORD = 6
"""Instructions the generated data-section reduction epilogue executes per
data word (address computation, load, fold, counter, branch)."""

ESTIMATED_CPI = 3.0
"""Rough in-order-core cycles-per-instruction used to size loop bounds.

The InO-core resolves hazards by scoreboard stalls and branches at execute,
so generated kernels (short dependence chains, taken back-branches) run at
roughly 3 cycles per instruction; the synthesizer only needs the cycle
budget to be approximate (it controls campaign cost, not semantics).
"""


@dataclass(frozen=True)
class InstructionMix:
    """Relative weights of the four body-operation classes.

    Weights are relative, not normalised -- ``InstructionMix(2, 1, 1, 0)``
    draws arithmetic twice as often as memory or branch operations and never
    draws shifts.  At least one weight must be positive.
    """

    arithmetic: float = 1.0
    memory: float = 1.0
    branch: float = 1.0
    shift: float = 1.0

    def __post_init__(self) -> None:
        weights = self.as_weights()
        if any(w < 0 for w in weights):
            raise ValueError(f"instruction-mix weights must be >= 0: {self}")
        if sum(weights) <= 0:
            raise ValueError("instruction mix needs at least one positive weight")

    def as_weights(self) -> tuple[float, float, float, float]:
        """Weights in the fixed draw order (arithmetic, memory, branch, shift)."""
        return (self.arithmetic, self.memory, self.branch, self.shift)


@dataclass(frozen=True)
class WorkloadProfile:
    """Specification of one synthetic-workload family member.

    Attributes:
        name: profile (scenario family) name; workload names derive from it.
        mix: relative instruction-class weights for loop-body operations.
        loop_depth: loop-nest depth (1..3); iteration counts are derived from
            ``target_cycles``.
        data_words: data-section size in 32-bit words (power of two, so
            generated addresses can be masked into range).
        target_cycles: approximate golden-run cycle budget on the in-order
            core.  The synthesizer sizes loop bounds against
            :data:`ESTIMATED_CPI`; the achieved count typically lands within
            a small factor of the budget, but never below
            :attr:`floor_cycles` -- the prologue plus the data-section
            reduction epilogue are a fixed cost, so budgets below the floor
            produce floor-sized programs (check ``floor_cycles`` when
            sweeping small budgets over large data sections).
        ops_per_block: operations drawn per innermost loop body.
        store_fraction: fraction of memory operations that are stores (the
            rest are loads).  Stored words stay observable: the generated
            epilogue reduces the whole data section into an output checksum.
    """

    name: str
    mix: InstructionMix = InstructionMix()
    loop_depth: int = 2
    data_words: int = 64
    target_cycles: int = 4000
    ops_per_block: int = 12
    store_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if not 1 <= self.loop_depth <= MAX_LOOP_DEPTH:
            raise ValueError(f"loop_depth must be 1..{MAX_LOOP_DEPTH}, "
                             f"got {self.loop_depth}")
        if (self.data_words < MIN_DATA_WORDS or self.data_words > MAX_DATA_WORDS
                or self.data_words & (self.data_words - 1)):
            raise ValueError(f"data_words must be a power of two in "
                             f"[{MIN_DATA_WORDS}, {MAX_DATA_WORDS}], "
                             f"got {self.data_words}")
        if not MIN_TARGET_CYCLES <= self.target_cycles <= MAX_TARGET_CYCLES:
            raise ValueError(f"target_cycles must be in [{MIN_TARGET_CYCLES}, "
                             f"{MAX_TARGET_CYCLES}], got {self.target_cycles}")
        if self.ops_per_block < 1:
            raise ValueError("ops_per_block must be >= 1")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")

    @property
    def floor_cycles(self) -> int:
        """Lower bound on achievable golden-run cycles for this profile.

        The data-section reduction epilogue alone executes
        ``EPILOGUE_INSTRUCTIONS_PER_WORD * data_words`` instructions, so no
        ``target_cycles`` below this floor is reachable.
        """
        fixed_instructions = EPILOGUE_INSTRUCTIONS_PER_WORD * self.data_words + 24
        return int(ESTIMATED_CPI * fixed_instructions)

    def evolve(self, **overrides) -> "WorkloadProfile":
        """A copy of this profile with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)
