"""Synthetic workload generation.

A seeded, constrained-random program generator that turns the fixed
18-benchmark suite into an unbounded scenario space:

* :mod:`repro.workloads.synthesis.profile` -- :class:`WorkloadProfile`, the
  generator's specification (instruction mix, loop-nest shape, data size,
  cycle budget);
* :mod:`repro.workloads.synthesis.generator` -- the structured program
  synthesizer (valid, trap-free, observable-by-construction kernels);
* :mod:`repro.workloads.synthesis.families` -- named scenario families with
  golden outputs derived from the ISA reference simulator, registered with
  the workload registry at import;
* :mod:`repro.workloads.synthesis.sweep` -- per-profile vulnerability sweeps
  through the checkpointed parallel injection engine, optionally sharding
  whole workload campaigns over worker processes;
* :mod:`repro.workloads.synthesis.frontier` -- the synthesis-to-exploration
  loop: sweep-measured vulnerability maps drive the cross-layer explorer
  into persisted Pareto frontiers;
* :mod:`repro.workloads.synthesis.calibration` -- measured-CPI calibration
  landing golden runs on the profile's cycle budget instead of the fixed
  CPI estimate.
"""

from repro.workloads.synthesis.profile import InstructionMix, WorkloadProfile
from repro.workloads.synthesis.generator import (
    GeneratedProgram,
    ProgramSynthesizer,
    SynthesisError,
)
from repro.workloads.synthesis.calibration import (
    CalibrationResult,
    calibrate_cpi,
    synthesize_calibrated_workload,
)
from repro.workloads.synthesis.families import (
    BUILTIN_PROFILES,
    build_profile_family,
    derive_golden_output,
    synthesize_workload,
)
from repro.workloads.synthesis.sweep import (
    ProfileVulnerability,
    SyntheticSweepResult,
    run_synthetic_sweep,
)
from repro.workloads.synthesis.frontier import (
    SyntheticFrontierResult,
    explore_synthetic_frontier,
    explorer_for_sweep,
    frontier_from_sweep,
)

__all__ = [
    "InstructionMix",
    "WorkloadProfile",
    "GeneratedProgram",
    "ProgramSynthesizer",
    "SynthesisError",
    "BUILTIN_PROFILES",
    "CalibrationResult",
    "build_profile_family",
    "calibrate_cpi",
    "derive_golden_output",
    "synthesize_calibrated_workload",
    "synthesize_workload",
    "ProfileVulnerability",
    "SyntheticSweepResult",
    "run_synthetic_sweep",
    "SyntheticFrontierResult",
    "explore_synthetic_frontier",
    "explorer_for_sweep",
    "frontier_from_sweep",
]
