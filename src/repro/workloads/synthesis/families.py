"""Named scenario families and fully-automatic Workload construction.

:func:`synthesize_workload` closes the loop the hand-written suite leaves
open: instead of pairing each assembly program with a hand-written Python
reference model, the golden output is derived by running the generated
program through the ISA reference simulator
(:class:`repro.isa.simulator.FunctionalSimulator`).  The cycle-level cores
are independently verified against that same simulator, so the derived
golden stream is a sound SDC oracle -- and workload construction becomes a
pure function of (profile, seed).

Five built-in scenario families ship here and register themselves with the
workload registry (:mod:`repro.workloads.suite`):

==================  ========================================================
family              scenario
==================  ========================================================
control_heavy       deep loop nests, frequent data-dependent branches
memory_streaming    load/store dominated, large data section
arithmetic_dense    long arithmetic chains, few branches
branch_chaotic      branch-saturated bodies on near-random data
mixed               balanced mix of all operation classes
==================  ========================================================
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.simulator import FunctionalSimulator
from repro.workloads.base import Workload, WorkloadClass
from repro.workloads.suite import register_family
from repro.workloads.synthesis.generator import ProgramSynthesizer, SynthesisError
from repro.workloads.synthesis.profile import InstructionMix, WorkloadProfile

_MEMBER_SEED_STRIDE = 10_007
"""Stride separating the derived seeds of one family's members."""

_ORACLE_INSTRUCTION_LIMIT = 4_000_000

BUILTIN_PROFILES: dict[str, WorkloadProfile] = {
    "control_heavy": WorkloadProfile(
        name="control_heavy",
        mix=InstructionMix(arithmetic=1.5, memory=0.5, branch=3.0, shift=0.5),
        loop_depth=3, data_words=32, target_cycles=4000, ops_per_block=10),
    "memory_streaming": WorkloadProfile(
        name="memory_streaming",
        mix=InstructionMix(arithmetic=1.0, memory=4.0, branch=0.5, shift=0.5),
        loop_depth=2, data_words=256, target_cycles=4000, ops_per_block=12,
        store_fraction=0.4),
    "arithmetic_dense": WorkloadProfile(
        name="arithmetic_dense",
        mix=InstructionMix(arithmetic=5.0, memory=0.5, branch=0.3, shift=1.2),
        loop_depth=1, data_words=32, target_cycles=4000, ops_per_block=16),
    "branch_chaotic": WorkloadProfile(
        name="branch_chaotic",
        mix=InstructionMix(arithmetic=0.8, memory=0.8, branch=4.0, shift=0.4),
        loop_depth=2, data_words=64, target_cycles=4000, ops_per_block=8),
    "mixed": WorkloadProfile(
        name="mixed",
        mix=InstructionMix(arithmetic=1.0, memory=1.0, branch=1.0, shift=1.0),
        loop_depth=2, data_words=64, target_cycles=4000, ops_per_block=12),
}


def derive_golden_output(source: str, name: str = "synthetic") -> list[int]:
    """Golden output of an assembly program via the reference simulator.

    Raises:
        SynthesisError: if the program does not run to a clean ``halt`` (a
            generator-invariant violation, never an expected outcome).
    """
    program = assemble(source, name=name)
    result = FunctionalSimulator(
        max_instructions=_ORACLE_INSTRUCTION_LIMIT).run(program).result
    if not result.halted or result.trap is not None:
        raise SynthesisError(
            f"generated program {name!r} violated construction invariants: "
            f"halted={result.halted} trap={result.trap} "
            f"after {result.instructions} instructions")
    if not result.output:
        raise SynthesisError(f"generated program {name!r} produced no output")
    return result.output


def synthesize_workload(profile: WorkloadProfile, seed: int = 2016,
                        name: str | None = None, cpi: float | None = None) -> Workload:
    """Generate one workload: program synthesis + simulator-derived oracle.

    ``cpi`` overrides the fixed loop-sizing estimate; pass the output of
    :func:`repro.workloads.synthesis.calibration.calibrate_cpi` (or use
    :func:`~repro.workloads.synthesis.calibration.synthesize_calibrated_workload`)
    to land the golden run on the profile's cycle budget.
    """
    generated = ProgramSynthesizer(profile, seed=seed, cpi=cpi).generate()
    workload_name = name or f"syn_{profile.name}_{seed}"
    golden = derive_golden_output(generated.source, name=workload_name)
    return Workload(
        name=workload_name,
        suite=WorkloadClass.SYNTHETIC,
        source=generated.source,
        reference=lambda: list(golden),
        ooo_compatible=True,
        description=(f"synthetic {profile.name} kernel (seed {seed}, "
                     f"loops {'x'.join(map(str, generated.loop_trips))}, "
                     f"{generated.body_operations} body ops)"),
    )


def build_profile_family(profile: WorkloadProfile, seed: int = 2016,
                         count: int = 4, **overrides) -> list[Workload]:
    """Build ``count`` members of one family from a single seed.

    Member ``i`` uses seed ``seed + i * stride``; ``overrides`` evolve the
    profile first (e.g. ``target_cycles=1000`` for quick campaigns).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if overrides:
        profile = profile.evolve(**overrides)
    return [synthesize_workload(
                profile, seed=seed + index * _MEMBER_SEED_STRIDE,
                name=f"syn_{profile.name}_{seed}_{index:02d}")
            for index in range(count)]


def _register_builtin_families() -> None:
    for family_name, profile in BUILTIN_PROFILES.items():
        def builder(seed: int = 2016, count: int = 4,
                    _profile: WorkloadProfile = profile, **overrides):
            return build_profile_family(_profile, seed=seed, count=count, **overrides)
        register_family(family_name, builder)


_register_builtin_families()
