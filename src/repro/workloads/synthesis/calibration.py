"""Measured-CPI calibration of synthetic cycle budgets.

The synthesizer sizes loop bounds against the fixed
:data:`~repro.workloads.synthesis.profile.ESTIMATED_CPI` guess, so the
achieved golden-run cycle count can land a sizable factor away from
``WorkloadProfile.target_cycles`` for mixes whose stall behaviour deviates
from the estimate (branch-heavy bodies stall more, arithmetic-dense ones
less).  :func:`synthesize_calibrated_workload` closes the loop against a
*measured* golden run: generate, run the program on the cycle-accurate core,
scale the CPI by the observed cycles-to-budget ratio, and regenerate --
converging in a round or two because achieved cycles are nearly linear in
the instruction budget.

Calibration only rescales trip counts: the generator's RNG stream depends on
(profile, seed) alone, so the loop body, data section and instruction mix
are untouched, and the whole procedure is deterministic -- one
(profile, seed, core) triple always yields the same calibrated workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.microarch.core import BaseCore
from repro.microarch.inorder import InOrderCore
from repro.workloads.base import Workload
from repro.workloads.synthesis.generator import ProgramSynthesizer, SynthesisError
from repro.workloads.synthesis.profile import ESTIMATED_CPI, WorkloadProfile

#: Stop refining once the achieved cycle count is within this relative error.
DEFAULT_TOLERANCE = 0.10

#: Refinement-round cap; convergence is usually immediate (cycles scale
#: almost linearly with the instruction budget).
DEFAULT_MAX_ROUNDS = 4

#: Sanity clamp on the measured CPI -- guards the correction loop against
#: floor-limited profiles where achieved cycles cannot follow the budget.
_CPI_BOUNDS = (0.5, 24.0)


@dataclass(frozen=True)
class CalibrationResult:
    """One calibrated synthetic workload plus how calibration went."""

    workload: Workload
    profile: WorkloadProfile
    seed: int
    achieved_cycles: int
    effective_cpi: float
    rounds: int

    @property
    def target_cycles(self) -> int:
        return self.profile.target_cycles

    @property
    def relative_error(self) -> float:
        """Remaining |achieved - target| / target after calibration."""
        return abs(self.achieved_cycles - self.target_cycles) / self.target_cycles


def measure_golden_cycles(profile: WorkloadProfile, seed: int, cpi: float,
                          core: BaseCore) -> int:
    """Golden-run cycle count of the (profile, seed, cpi) program on ``core``."""
    generated = ProgramSynthesizer(profile, seed=seed, cpi=cpi).generate()
    program = assemble(generated.source, name=f"cal_{profile.name}_{seed}")
    result = core.run(program)
    if not result.normal_termination:
        raise SynthesisError(
            f"calibration run of profile {profile.name!r} (seed {seed}) did not "
            f"halt cleanly: {result.reason.value} after {result.cycles} cycles")
    return result.cycles


def calibrate_cpi(profile: WorkloadProfile, seed: int = 2016,
                  core: BaseCore | None = None,
                  tolerance: float = DEFAULT_TOLERANCE,
                  max_rounds: int = DEFAULT_MAX_ROUNDS) -> tuple[float, int, int]:
    """Measured CPI bringing the profile's golden run onto its cycle budget.

    Returns ``(cpi, achieved_cycles, rounds)`` for the best round observed.
    Profiles whose budget sits below their fixed-cost floor
    (:attr:`WorkloadProfile.floor_cycles`) converge to the floor instead of
    the budget; the returned achieved count reflects that honestly.
    """
    core = core or InOrderCore()
    target = profile.target_cycles
    cpi = ESTIMATED_CPI
    best: tuple[float, float, int] | None = None  # (error, cpi, achieved)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        achieved = measure_golden_cycles(profile, seed, cpi, core)
        error = abs(achieved - target) / target
        if best is None or error < best[0]:
            best = (error, cpi, achieved)
        if error <= tolerance:
            break
        # Cycles are ~linear in the instruction budget, and the budget is
        # target / cpi: scale the CPI by the observed overshoot ratio.
        low, high = _CPI_BOUNDS
        cpi = min(high, max(low, cpi * achieved / target))
        if cpi == best[1]:
            break  # clamped or converged: further rounds cannot improve
    assert best is not None
    return best[1], best[2], rounds


def synthesize_calibrated_workload(profile: WorkloadProfile, seed: int = 2016,
                                   core: BaseCore | None = None,
                                   tolerance: float = DEFAULT_TOLERANCE,
                                   max_rounds: int = DEFAULT_MAX_ROUNDS,
                                   name: str | None = None) -> CalibrationResult:
    """One workload whose golden run lands on the profile's cycle budget.

    Drop-in companion to
    :func:`repro.workloads.synthesis.families.synthesize_workload`, which
    keeps the fixed-CPI sizing (and the historical program bytes) for callers
    that only need an approximate budget.
    """
    from repro.workloads.synthesis.families import synthesize_workload

    cpi, achieved, rounds = calibrate_cpi(profile, seed=seed, core=core,
                                          tolerance=tolerance, max_rounds=max_rounds)
    workload = synthesize_workload(profile, seed=seed, name=name, cpi=cpi)
    return CalibrationResult(workload=workload, profile=profile, seed=seed,
                             achieved_cycles=achieved, effective_cpi=cpi,
                             rounds=rounds)
