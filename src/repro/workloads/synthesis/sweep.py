"""Per-profile vulnerability sweeps over synthetic workload suites.

:func:`run_synthetic_sweep` is the single seeded call the subsystem promises:
generate a synthetic suite (every registered family, ``per_family`` members
each -- 20 workloads with the five built-in families at the default), run a
fault-injection campaign on each member through the checkpointed parallel
engine, and aggregate a per-profile vulnerability table.  Campaign seeds are
derived deterministically from the sweep seed -- and validated against
cross-family block collisions -- so results are bit-identical across
repeated runs and across serial / process-pool executors.

With ``workers > 1`` the per-workload campaign loop itself is sharded over
the engine's generic payload+shard executor layer
(:class:`repro.engine.executors.ParallelExecutor`): workloads are generated
up-front in the calling process, whole campaigns fan out to worker
processes, and results are folded back in deterministic (family, member)
order regardless of shard completion order.  Shared-mutable state stays out
of the workers by construction: the :class:`VulnerabilityMap` is built only
in the parent from the streamed results, and each worker process uses a
private :class:`GoldenRunCache` (a cache cannot be shared across process
boundaries; a caller-supplied cache is therefore only consulted on the
serial path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.engine.engine import EngineConfig, InjectionEngine
from repro.engine.checkpoint import (
    GoldenCacheStats,
    GoldenRunCache,
    resolve_golden_cache,
)
from repro.engine.executors import ParallelExecutor
from repro.faultinjection.outcomes import OutcomeCounts
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.isa.program import Program
from repro.microarch.core import BaseCore
from repro.reporting import format_table
from repro.workloads import suite as registry

_FAMILY_SEED_STRIDE = 100_003
"""Seed stride between families' campaign seed blocks."""

_MAX_DERIVED_SEED = 2 ** 63 - 1
"""Ceiling on every derived seed.  The engine multiplies campaign seeds by
its chunk stride (``repro.engine.executors._SEED_STRIDE``) when deriving
per-chunk seeds; keeping that product inside a signed 64-bit lane protects
backends that narrow seeds (numpy bit generators, accelerator RNGs) from
silent truncation -- the same bug class as the crc32/hash-randomization fix
in ``faultinjection/calibrated.py``."""


@dataclass
class ProfileVulnerability:
    """Aggregated campaign outcomes for one scenario family."""

    family: str
    workload_names: list[str]
    outcomes: OutcomeCounts
    golden_cycles: int
    converged_count: int = 0
    saved_cycles: int = 0
    replayed_cycles: int = 0

    @property
    def injections(self) -> int:
        return self.outcomes.total

    @property
    def sdc_rate(self) -> float:
        return self.outcomes.sdc_count / self.injections if self.injections else 0.0

    @property
    def due_rate(self) -> float:
        return self.outcomes.due_count / self.injections if self.injections else 0.0

    @property
    def converged_fraction(self) -> float:
        """Share of the family's replays the convergence gate decided early."""
        return self.converged_count / self.injections if self.injections else 0.0


@dataclass
class SyntheticSweepResult:
    """Everything one seeded sweep produced.

    ``cache_stats`` aggregates the golden-run cache traffic of this sweep
    across the serial path or every pool worker (a
    :class:`~repro.engine.GoldenCacheStats` fleet merge); ``store_stats``
    is a census of the persistent artifact store when
    ``config.artifact_dir`` was set.  Either is None when unavailable.
    """

    core_name: str
    seed: int
    profiles: list[ProfileVulnerability]
    vulnerability: VulnerabilityMap
    campaign_results: list = field(default_factory=list)
    cache_stats: GoldenCacheStats | None = None
    store_stats: object | None = None

    @property
    def workload_names(self) -> list[str]:
        return [name for profile in self.profiles
                for name in profile.workload_names]

    def table(self) -> str:
        """Render the per-profile vulnerability table."""
        rows = [[p.family, len(p.workload_names), p.golden_cycles,
                 p.injections, f"{100 * p.sdc_rate:.1f}%",
                 f"{100 * p.due_rate:.1f}%",
                 f"{100 * p.converged_fraction:.1f}%", p.saved_cycles]
                for p in self.profiles]
        return format_table(
            f"Per-profile vulnerability on {self.core_name} (seed {self.seed})",
            ["profile", "workloads", "golden cycles", "injections",
             "SDC rate", "DUE rate", "converged", "saved cycles"],
            rows)

    def cache_table(self) -> str:
        """Render the sweep's golden-cache (and store) telemetry tables,
        plus the per-profile convergence-gate summary."""
        from repro.reporting import (format_artifact_store_stats,
                                     format_convergence_summary,
                                     format_golden_cache_stats)

        parts = []
        if self.cache_stats is not None:
            parts.append(format_golden_cache_stats(
                self.cache_stats,
                title=f"Golden-run cache (sweep seed {self.seed})"))
        if self.store_stats is not None:
            parts.append(format_artifact_store_stats(self.store_stats))
        if self.profiles:
            parts.append(format_convergence_summary(
                [(p.family, p) for p in self.profiles],
                title=f"Convergence gate (sweep seed {self.seed})"))
        return "\n\n".join(parts)


# ---------------------------------------------------------------------- sharding
@dataclass(frozen=True)
class SweepUnit:
    """One workload campaign of the sweep, fully resolved and picklable.

    Carries the assembled :class:`Program` rather than the
    :class:`~repro.workloads.base.Workload` (whose golden-reference closure
    does not pickle); the campaign seed is derived up-front so it is
    independent of executor choice, sharding and completion order.
    """

    family_index: int
    family: str
    offset: int
    workload_name: str
    program: Program
    campaign_seed: int


@dataclass(frozen=True)
class SweepShard:
    """A contiguous slice of the sweep's campaign units."""

    index: int
    units: tuple[SweepUnit, ...]


@dataclass
class SweepShardResult:
    """Streamed aggregate for one executed sweep shard (unit order).

    ``cache_stats`` snapshots the shard's private golden-run cache so the
    parent can merge a fleet-wide readout (loads vs recordings across all
    workers)."""

    index: int
    results: list
    cache_stats: GoldenCacheStats | None = None


@dataclass
class SweepSpec:
    """Everything a worker needs to run sweep campaigns.

    ``config`` always has ``workers == 1``: shard workers run their campaigns
    serially (the parallelism lives at the workload level), which avoids
    nested process pools.  ``max_cache_entries`` sizes each worker's private
    golden-run cache (None = the :class:`GoldenRunCache` default).
    """

    core: BaseCore
    injections: int
    config: EngineConfig
    max_cache_entries: int | None = None


def _build_cache(max_cache_entries: int | None) -> GoldenRunCache:
    cache = resolve_golden_cache(None, max_cache_entries)
    return cache if cache is not None else GoldenRunCache()


def evaluate_sweep_shard(spec: SweepSpec, shard: SweepShard) -> SweepShardResult:
    """Run every campaign of one shard (worker entry point).

    Each invocation builds a private :class:`GoldenRunCache`: golden runs
    depend only on (core, program) and every unit's program is distinct, so
    nothing is lost -- and no cache object is ever shared across processes.
    """
    cache = _build_cache(spec.max_cache_entries)
    results = [_run_campaign(spec.core, unit.program, seed=unit.campaign_seed,
                             injections=spec.injections, config=spec.config,
                             cache=cache)
               for unit in shard.units]
    return SweepShardResult(index=shard.index, results=results,
                            cache_stats=cache.stats())


def _shard_units(units: list[SweepUnit], workers: int,
                 chunk_size: int | None = None) -> list[SweepShard]:
    """Split the unit list into contiguous shards (~4 per worker)."""
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(units) / max(1, workers * 4)))
    chunk_size = max(1, chunk_size)
    return [SweepShard(index=index, units=tuple(units[start:start + chunk_size]))
            for index, start in enumerate(range(0, len(units), chunk_size))]


def _run_units_sharded(core: BaseCore, units: list[SweepUnit], injections: int,
                       config: EngineConfig | None, workers: int,
                       chunk_size: int | None,
                       max_cache_entries: int | None = None,
                       ) -> tuple[list, GoldenCacheStats | None]:
    """Fan campaigns out over the process pool; results in unit order.

    Returns ``(campaign_results, merged_cache_stats)``: the shards' private
    golden-cache snapshots merge (in shard order) into one fleet readout.
    """
    inner = replace(config or EngineConfig(), workers=1)
    spec = SweepSpec(core=core, injections=injections, config=inner,
                     max_cache_entries=max_cache_entries)
    shards = _shard_units(units, workers, chunk_size)
    executor = ParallelExecutor(workers=workers)
    by_index: dict[int, list] = {}
    stats_by_index: dict[int, GoldenCacheStats | None] = {}
    for shard_result in executor.stream(spec, shards, evaluate_sweep_shard):
        by_index[shard_result.index] = shard_result.results
        stats_by_index[shard_result.index] = shard_result.cache_stats
    merged_stats: GoldenCacheStats | None = None
    for index in range(len(shards)):
        shard_stats = stats_by_index.get(index)
        if shard_stats is None:
            continue
        merged_stats = (shard_stats if merged_stats is None
                        else merged_stats.merged_with(shard_stats))
    return ([result for index in range(len(shards))
             for result in by_index[index]], merged_stats)


# ---------------------------------------------------------------------- validation
def _validate_sweep_seeds(seed: int, per_family: int, family_count: int,
                          injections_per_workload: int) -> None:
    """Reject parameter choices that would silently collide seed blocks.

    Family ``f``'s member ``i`` campaigns with seed
    ``seed + f * _FAMILY_SEED_STRIDE + i``; ``per_family >=
    _FAMILY_SEED_STRIDE`` would overlap adjacent families' blocks and
    silently correlate their injection streams.  Large seeds are bounded so
    the engine's derived per-chunk seeds stay inside 64 signed bits (see
    :data:`_MAX_DERIVED_SEED`).
    """
    if per_family < 1:
        raise ValueError(f"per_family must be >= 1, got {per_family}")
    if injections_per_workload < 1:
        raise ValueError("injections_per_workload must be >= 1, got "
                         f"{injections_per_workload}")
    if per_family >= _FAMILY_SEED_STRIDE:
        raise ValueError(
            f"per_family={per_family} reaches the family seed stride "
            f"({_FAMILY_SEED_STRIDE}): member seed blocks of adjacent "
            f"families would overlap and their campaigns would share "
            f"injection streams.  Split the sweep across several seeds "
            f"instead.")
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    largest = seed + max(0, family_count - 1) * _FAMILY_SEED_STRIDE \
        + (per_family - 1)
    from repro.engine.executors import _SEED_STRIDE as _CHUNK_STRIDE
    if largest * _CHUNK_STRIDE >= _MAX_DERIVED_SEED:
        raise ValueError(
            f"seed={seed} is too large: the derived per-chunk campaign seeds "
            f"(up to ~{largest * _CHUNK_STRIDE:.2e}) would overflow a signed "
            f"64-bit lane and could be silently truncated by narrowing RNG "
            f"backends.  Use a seed below "
            f"{_MAX_DERIVED_SEED // _CHUNK_STRIDE - largest + seed}.")


# ---------------------------------------------------------------------- sweep
def run_synthetic_sweep(core: BaseCore, seed: int = 0, per_family: int = 4,
                        injections_per_workload: int = 40,
                        families: list[str] | None = None,
                        config: EngineConfig | None = None,
                        golden_cache: GoldenRunCache | None = None,
                        workers: int = 1, chunk_size: int | None = None,
                        max_cache_entries: int | None = None,
                        **profile_overrides) -> SyntheticSweepResult:
    """Generate a synthetic suite and sweep vulnerability across its profiles.

    ``families`` defaults to every registered family; ``profile_overrides``
    (e.g. ``target_cycles=1000``) evolve each family's profile before
    generation.  The campaign seed of family ``f``'s member ``i`` is
    ``seed + f * stride + i`` -- independent of executor choice, worker count
    and chunking, which is what makes the sweep reproducible bit-for-bit.

    ``workers > 1`` shards whole workload campaigns over the engine's
    process-pool executor (each worker running its campaigns serially);
    results are identical to the serial loop.  ``golden_cache`` is consulted
    only on the serial path -- worker processes build private caches, so a
    shared cache object is never mutated across processes.
    ``max_cache_entries`` sizes the golden-run caches instead (serial path
    and per-worker alike; the default of 8 thrashes once
    ``len(families) * per_family`` exceeds it on a repeated sweep); it cannot
    be combined with an explicit ``golden_cache``.
    """
    family_names = families if families is not None else registry.family_names()
    _validate_sweep_seeds(seed, per_family, len(family_names),
                          injections_per_workload)
    artifact_dir = config.artifact_dir if config is not None else None
    resolved_cache = resolve_golden_cache(golden_cache, max_cache_entries,
                                          artifact_dir=artifact_dir)
    units: list[SweepUnit] = []
    for family_index, family in enumerate(family_names):
        workloads = registry.build_family(family, seed=seed, count=per_family,
                                          **profile_overrides)
        base_seed = seed + family_index * _FAMILY_SEED_STRIDE
        for offset, workload in enumerate(workloads):
            units.append(SweepUnit(
                family_index=family_index, family=family, offset=offset,
                workload_name=workload.name, program=workload.program(),
                campaign_seed=base_seed + offset))

    if workers > 1 and len(units) > 1:
        results, cache_stats = _run_units_sharded(
            core, units, injections_per_workload, config, workers, chunk_size,
            max_cache_entries=max_cache_entries)
    else:
        cache = resolved_cache if resolved_cache is not None else GoldenRunCache()
        before = cache.stats()
        results = [_run_campaign(core, unit.program, seed=unit.campaign_seed,
                                 injections=injections_per_workload,
                                 config=config, cache=cache)
                   for unit in units]
        cache_stats = _stats_delta(cache.stats(), before)
    store_stats = None
    if artifact_dir is not None:
        from repro.engine.artifacts import GoldenArtifactStore

        # Census-only view in the parent: the load/save traffic happened on
        # the serial cache's store or inside the pool workers.
        store = (resolved_cache.store
                 if resolved_cache is not None
                 and resolved_cache.store is not None
                 else GoldenArtifactStore(artifact_dir))
        store_stats = store.stats()

    # Fold in (family, member) order -- deterministic however shards landed.
    vulnerability = VulnerabilityMap(core.name, core.flip_flop_count)
    profiles: list[ProfileVulnerability] = []
    last_family_index = None
    campaign_results = []
    for unit, result in zip(units, results):
        result.contribute_to(vulnerability)
        campaign_results.append(result)
        if unit.family_index != last_family_index:
            profiles.append(ProfileVulnerability(
                family=unit.family, workload_names=[],
                outcomes=OutcomeCounts(), golden_cycles=0))
            last_family_index = unit.family_index
        profile = profiles[-1]
        profile.workload_names.append(unit.workload_name)
        profile.outcomes = profile.outcomes.merged_with(result.outcomes)
        profile.golden_cycles += result.golden.cycles
        profile.converged_count += result.converged_count
        profile.saved_cycles += result.saved_cycles
        profile.replayed_cycles += result.replayed_cycles
    return SyntheticSweepResult(core_name=core.name, seed=seed,
                                profiles=profiles, vulnerability=vulnerability,
                                campaign_results=campaign_results,
                                cache_stats=cache_stats,
                                store_stats=store_stats)


def _stats_delta(after: GoldenCacheStats,
                 before: GoldenCacheStats) -> GoldenCacheStats:
    """Traffic attributable to this sweep on a possibly pre-used cache
    (counters subtract; entries/capacity keep the final snapshot)."""
    return GoldenCacheStats(
        hits=after.hits - before.hits, misses=after.misses - before.misses,
        entries=after.entries, max_entries=after.max_entries,
        artifacts_loaded=after.artifacts_loaded - before.artifacts_loaded,
        artifacts_saved=after.artifacts_saved - before.artifacts_saved)


def _run_campaign(core: BaseCore, program: Program, seed: int, injections: int,
                  config: EngineConfig | None, cache: GoldenRunCache):
    """One workload campaign.  The seed handoff is pure integer arithmetic
    end to end (sweep seed -> campaign seed -> ``random.Random`` /
    ``uniform_injection_plan`` -> chunk seeds); no ``hash()``-style
    per-process randomization anywhere in the chain."""
    engine = InjectionEngine(core, program, seed=seed, config=config,
                             golden_cache=cache)
    return engine.run(injections=injections)
