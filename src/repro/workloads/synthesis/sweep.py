"""Per-profile vulnerability sweeps over synthetic workload suites.

:func:`run_synthetic_sweep` is the single seeded call the subsystem promises:
generate a synthetic suite (every registered family, ``per_family`` members
each -- 20 workloads with the five built-in families at the default), run a
fault-injection campaign on each member through the checkpointed parallel
engine, and aggregate a per-profile vulnerability table.  Campaign seeds are
derived deterministically from the sweep seed, so results are bit-identical
across repeated runs and across serial / process-pool executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.engine import EngineConfig, InjectionEngine
from repro.engine.checkpoint import GoldenRunCache
from repro.faultinjection.outcomes import OutcomeCounts
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.core import BaseCore
from repro.reporting import format_table
from repro.workloads import suite as registry
from repro.workloads.base import Workload

_FAMILY_SEED_STRIDE = 100_003
"""Seed stride between families' campaign seed blocks."""


@dataclass
class ProfileVulnerability:
    """Aggregated campaign outcomes for one scenario family."""

    family: str
    workload_names: list[str]
    outcomes: OutcomeCounts
    golden_cycles: int

    @property
    def injections(self) -> int:
        return self.outcomes.total

    @property
    def sdc_rate(self) -> float:
        return self.outcomes.sdc_count / self.injections if self.injections else 0.0

    @property
    def due_rate(self) -> float:
        return self.outcomes.due_count / self.injections if self.injections else 0.0


@dataclass
class SyntheticSweepResult:
    """Everything one seeded sweep produced."""

    core_name: str
    seed: int
    profiles: list[ProfileVulnerability]
    vulnerability: VulnerabilityMap
    campaign_results: list = field(default_factory=list)

    @property
    def workload_names(self) -> list[str]:
        return [name for profile in self.profiles
                for name in profile.workload_names]

    def table(self) -> str:
        """Render the per-profile vulnerability table."""
        rows = [[p.family, len(p.workload_names), p.golden_cycles,
                 p.injections, f"{100 * p.sdc_rate:.1f}%",
                 f"{100 * p.due_rate:.1f}%"]
                for p in self.profiles]
        return format_table(
            f"Per-profile vulnerability on {self.core_name} (seed {self.seed})",
            ["profile", "workloads", "golden cycles", "injections",
             "SDC rate", "DUE rate"],
            rows)


def run_synthetic_sweep(core: BaseCore, seed: int = 0, per_family: int = 4,
                        injections_per_workload: int = 40,
                        families: list[str] | None = None,
                        config: EngineConfig | None = None,
                        golden_cache: GoldenRunCache | None = None,
                        **profile_overrides) -> SyntheticSweepResult:
    """Generate a synthetic suite and sweep vulnerability across its profiles.

    ``families`` defaults to every registered family; ``profile_overrides``
    (e.g. ``target_cycles=1000``) evolve each family's profile before
    generation.  The campaign seed of family ``f``'s member ``i`` is
    ``seed + f * stride + i`` -- independent of executor choice, worker count
    and chunking, which is what makes the sweep reproducible bit-for-bit.
    """
    family_names = families if families is not None else registry.family_names()
    cache = golden_cache if golden_cache is not None else GoldenRunCache()
    vulnerability = VulnerabilityMap(core.name, core.flip_flop_count)
    profiles: list[ProfileVulnerability] = []
    campaign_results = []
    for family_index, family in enumerate(family_names):
        workloads = registry.build_family(family, seed=seed, count=per_family,
                                          **profile_overrides)
        base_seed = seed + family_index * _FAMILY_SEED_STRIDE
        outcomes = OutcomeCounts()
        golden_cycles = 0
        names = []
        for offset, workload in enumerate(workloads):
            result = _run_one(core, workload, seed=base_seed + offset,
                              injections=injections_per_workload,
                              config=config, cache=cache)
            result.contribute_to(vulnerability)
            outcomes = outcomes.merged_with(result.outcomes)
            golden_cycles += result.golden.cycles
            names.append(workload.name)
            campaign_results.append(result)
        profiles.append(ProfileVulnerability(
            family=family, workload_names=names, outcomes=outcomes,
            golden_cycles=golden_cycles))
    return SyntheticSweepResult(core_name=core.name, seed=seed,
                                profiles=profiles, vulnerability=vulnerability,
                                campaign_results=campaign_results)


def _run_one(core: BaseCore, workload: Workload, seed: int, injections: int,
             config: EngineConfig | None, cache: GoldenRunCache):
    engine = InjectionEngine(core, workload.program(), seed=seed,
                             config=config, golden_cache=cache)
    return engine.run(injections=injections)
