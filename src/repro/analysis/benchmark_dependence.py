"""Application-benchmark dependence study (Sec. 4).

Selective hardening is guided by error injection on *benchmarks*; the field
application mix may differ.  The paper quantifies the resulting optimism/
pessimism by training the protection on a random subset of benchmarks and
validating the achieved improvement on the rest (50 train/validate splits),
and mitigates it by protecting the remaining flip-flops with Light-Hardened
LEAP cells (Tables 23-26) and by analysing how similar the per-benchmark
vulnerability rankings are (Table 27, Eq. 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import NormalDist

from repro.core.heuristics import SelectionPolicy, SelectiveHardeningPlanner
from repro.core.improvement import ResilienceTarget
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import RecoveryKind
from repro.physical.costmodel import DesignCostModel
from repro.physical.timing import TimingModel
from repro.resilience.base import TechniqueDescriptor
from repro.resilience.circuit import harden_remaining_with_lhl
from repro.resilience.design import ProtectedDesign


@dataclass(frozen=True)
class TrainValidateSplit:
    """One train/validate partition of the benchmark list."""

    training: tuple[str, ...]
    validation: tuple[str, ...]


def make_splits(benchmarks: list[str], training_size: int = 4, count: int = 50,
                seed: int = 0) -> list[TrainValidateSplit]:
    """Random train/validate splits (the paper uses 50 splits of 4 vs 7)."""
    rng = random.Random(seed)
    splits = []
    for _ in range(count):
        training = tuple(rng.sample(benchmarks, min(training_size, len(benchmarks))))
        validation = tuple(b for b in benchmarks if b not in training)
        splits.append(TrainValidateSplit(training=training, validation=validation))
    return splits


@dataclass
class TrainValidateResult:
    """Trained vs validated improvement for one configuration."""

    target: float
    trained_sdc: float
    validated_sdc: float
    trained_due: float
    validated_due: float

    @property
    def sdc_underestimate_pct(self) -> float:
        if self.trained_sdc == 0:
            return 0.0
        return 100.0 * (self.validated_sdc - self.trained_sdc) / self.trained_sdc

    @property
    def due_underestimate_pct(self) -> float:
        if self.trained_due == 0:
            return 0.0
        return 100.0 * (self.validated_due - self.trained_due) / self.trained_due


def paired_p_value(differences: list[float]) -> float:
    """Two-sided p-value of a paired comparison (normal approximation).

    Used to report how likely trained and validated improvements agree
    (Tables 23/24's p-value column).
    """
    n = len(differences)
    if n < 2:
        return 1.0
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    if variance == 0:
        return 1.0 if mean == 0 else 0.0
    standard_error = (variance / n) ** 0.5
    z = mean / standard_error
    return 2.0 * (1.0 - NormalDist().cdf(abs(z)))


class BenchmarkDependenceStudy:
    """Train/validate analysis for selective hardening and standalone techniques."""

    def __init__(self, registry: FlipFlopRegistry, vulnerability: VulnerabilityMap,
                 timing: TimingModel | None = None, seed: int = 0):
        self.registry = registry
        self.vulnerability = vulnerability
        self.timing = timing or TimingModel(registry)
        self.seed = seed

    # ------------------------------------------------------------------ selective hardening
    def evaluate_selective(self, target: float, split: TrainValidateSplit,
                           recovery: RecoveryKind = RecoveryKind.NONE,
                           with_lhl: bool = False,
                           cost_model: DesignCostModel | None = None):
        """Train a selective-hardening design and validate it on unseen benchmarks.

        Returns a tuple ``(TrainValidateResult, CostReport | None)``; the cost
        report is included when a cost model is supplied (for Tables 25/26).
        """
        planner = SelectiveHardeningPlanner(self.registry, self.vulnerability,
                                            self.timing, benchmarks=list(split.training))
        result = planner.plan(ResilienceTarget(sdc=target), recovery=recovery,
                              policy=SelectionPolicy(allow_parity=False))
        design = result.design
        if with_lhl:
            harden_remaining_with_lhl(design.hardening,
                                      range(self.registry.total_flip_flops))
        trained = design.estimate_improvement(self.vulnerability, list(split.training))
        validated = design.estimate_improvement(self.vulnerability, list(split.validation))
        outcome = TrainValidateResult(target=target,
                                      trained_sdc=trained.sdc_improvement,
                                      validated_sdc=validated.sdc_improvement,
                                      trained_due=trained.due_improvement,
                                      validated_due=validated.due_improvement)
        cost = design.cost(cost_model) if cost_model is not None else None
        return outcome, cost

    # ------------------------------------------------------------------ standalone high-level techniques
    def evaluate_high_level(self, technique: TechniqueDescriptor,
                            splits: list[TrainValidateSplit]) -> TrainValidateResult:
        """Trained vs validated improvement of a standalone high-level technique.

        High-level techniques cannot be tuned to a target, so train/validate
        simply compares the improvement estimated over the training
        benchmarks with the one over the validation benchmarks, averaged over
        splits (Tables 23/24).
        """
        design = ProtectedDesign(registry=self.registry, high_level=[technique])
        trained_sdc, validated_sdc, trained_due, validated_due = [], [], [], []
        for split in splits:
            trained = design.estimate_improvement(self.vulnerability, list(split.training))
            validated = design.estimate_improvement(self.vulnerability,
                                                    list(split.validation))
            trained_sdc.append(trained.sdc_improvement)
            validated_sdc.append(validated.sdc_improvement)
            trained_due.append(trained.due_improvement)
            validated_due.append(validated.due_improvement)
        count = len(splits) or 1
        return TrainValidateResult(
            target=0.0,
            trained_sdc=sum(trained_sdc) / count,
            validated_sdc=sum(validated_sdc) / count,
            trained_due=sum(trained_due) / count,
            validated_due=sum(validated_due) / count)
