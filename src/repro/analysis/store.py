"""Versioned persistence for exploration artefacts.

Pareto frontiers are the condensed output of sweeps that can take minutes
(synthetic campaigns) to hours (full combination pools at scale), so they are
worth keeping: this module round-trips :class:`~repro.analysis.pareto.ParetoFrontier`
through a small versioned JSON document together with free-form sweep
metadata (seed, core, families, targets, ...), and merges stored frontiers
from different runs into one cross-run frontier for comparison dashboards.

Round-trips are exact: floats are serialized with ``repr`` precision (the
``json`` module's default), so a reloaded frontier has bit-identical
coordinates and therefore an identical dominance structure.  Payload objects
survive as plain JSON data -- dataclasses (e.g. the explorer's
``ExplorationRecord``) become dicts, anything not JSON-representable is
dropped -- because the payload is a debugging convenience, not part of the
frontier's identity.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.obs import manifest_dict
from repro.obs.manifest import manifest_drift

STORE_FORMAT = "repro.pareto-frontier"
"""Document discriminator, so stray JSON files fail fast with a clear error."""

STORE_VERSION = 2
"""Schema version; bump on incompatible layout changes.

Version history: 1 = format/metadata/seen/points; 2 = adds ``manifest``
(:func:`repro.obs.manifest_dict` provenance).  Version-1 documents still
load -- their manifest is simply empty."""


@dataclass
class StoredFrontier:
    """One persisted frontier: the points plus the sweep that produced them."""

    frontier: ParetoFrontier
    metadata: dict = field(default_factory=dict)
    manifest: dict = field(default_factory=dict)
    version: int = STORE_VERSION

    @property
    def label(self) -> str:
        """Short human identity for comparison tables."""
        return str(self.metadata.get("label")
                   or self.metadata.get("core")
                   or "frontier")


def _payload_to_json(payload: object) -> object:
    """Best-effort JSON projection of a point payload (None when opaque)."""
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        payload = dataclasses.asdict(payload)
    try:
        json.dumps(payload)
    except (TypeError, ValueError):
        return None
    return payload


def frontier_to_dict(frontier: ParetoFrontier,
                     metadata: dict | None = None,
                     manifest: dict | None = None) -> dict:
    """The versioned JSON-ready document of one frontier.

    ``manifest`` defaults to a freshly built provenance record for the
    current process (:func:`repro.obs.manifest_dict`); pass the campaign's
    own manifest to record its seed/core/config instead.
    """
    return {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "metadata": dict(metadata or {}),
        "manifest": dict(manifest) if manifest is not None else manifest_dict(),
        "seen": frontier.seen,
        "points": [
            {
                "improvement": point.improvement,
                "energy_pct": point.energy_pct,
                "area_pct": point.area_pct,
                "exec_time_pct": point.exec_time_pct,
                "label": point.label,
                "payload": _payload_to_json(point.payload),
            }
            for point in frontier.points()
        ],
    }


def frontier_from_dict(document: dict) -> StoredFrontier:
    """Rebuild a stored frontier, revalidating dominance on the way in.

    Raises:
        ValueError: if the document is not a frontier store or was written
            by a newer schema version than this code understands.
    """
    if document.get("format") != STORE_FORMAT:
        raise ValueError(
            f"not a Pareto frontier store (format={document.get('format')!r}, "
            f"expected {STORE_FORMAT!r})")
    version = document.get("version")
    if not isinstance(version, int) or version < 1 or version > STORE_VERSION:
        raise ValueError(
            f"unsupported frontier store version {version!r}; this build "
            f"reads versions 1..{STORE_VERSION} -- regenerate the store or "
            f"upgrade the reader")
    try:
        points = [ParetoPoint(improvement=entry["improvement"],
                              energy_pct=entry["energy_pct"],
                              area_pct=entry["area_pct"],
                              exec_time_pct=entry["exec_time_pct"],
                              label=entry.get("label", ""),
                              payload=entry.get("payload"))
                  for entry in document["points"]]
    except (KeyError, TypeError) as error:
        raise ValueError(
            f"malformed frontier store (version {version}): {error!r}; the "
            f"document is truncated or was edited by hand") from error
    frontier = ParetoFrontier.from_points(points, seen=document.get("seen"))
    return StoredFrontier(frontier=frontier,
                          metadata=dict(document.get("metadata", {})),
                          manifest=dict(document.get("manifest") or {}),
                          version=version)


def save_frontier(path: str | Path, frontier: ParetoFrontier,
                  metadata: dict | None = None,
                  manifest: dict | None = None) -> Path:
    """Persist one frontier (plus metadata and manifest) to ``path``.

    ``manifest`` defaults to a provenance record of the current process; see
    :func:`frontier_to_dict`.  The write is atomic (temp file + rename in
    the target directory): a frontier condenses a sweep that may have taken
    hours, so an interrupted save must never destroy the previous store.
    Returns the path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = frontier_to_dict(frontier, metadata=metadata, manifest=manifest)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(json.dumps(document, indent=2) + "\n")
    os.replace(scratch, path)
    return path


def load_frontier(path: str | Path) -> StoredFrontier:
    """Load one persisted frontier.

    Emits a :class:`RuntimeWarning` when the store's manifest records
    package versions (or a git revision) different from the current
    process: such a frontier still loads and merges fine, but is not a
    replay target for bit-exact comparison.

    Raises:
        ValueError: for non-store documents or unsupported versions.
    """
    store = frontier_from_dict(json.loads(Path(path).read_text()))
    drift = manifest_drift(store.manifest)
    if drift:
        warnings.warn(
            f"frontier store {Path(path).name!r} was produced by a different "
            f"environment ({'; '.join(drift)}); results are comparable but "
            "not bit-exact replay targets", RuntimeWarning, stacklevel=2)
    return store


def merge_frontiers(stores: Iterable[StoredFrontier | ParetoFrontier],
                    ) -> ParetoFrontier:
    """Fold several (stored) frontiers into one cross-run frontier.

    Coverage (`seen`) accumulates across the inputs, and the deterministic
    coordinate tie-break makes the merge independent of input order.
    """
    frontiers = [store.frontier if isinstance(store, StoredFrontier) else store
                 for store in stores]
    merged = ParetoFrontier()
    for frontier in frontiers:
        merged.update(frontier.points())
    merged._seen = sum(frontier.seen for frontier in frontiers)
    return merged
