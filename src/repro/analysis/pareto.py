"""Streaming Pareto frontier over exploration results.

The cross-layer sweep produces one point per (combination, target): an
achieved improvement plus energy/area/execution-time overheads.  Exploration
questions ("what does 50x cost at minimum?", the Fig. 1(d) cloud, the
Fig. 9/10 bounds envelopes) only ever consult the *non-dominated* subset, so
:class:`ParetoFrontier` folds points in as they stream out of the sharded
evaluators and keeps just that subset: a point is dropped the moment any
kept point is at least as good on every axis (higher-or-equal improvement,
lower-or-equal cost on every cost axis) and strictly better on one.

The final frontier is independent of insertion order -- dominance is a
partial order, exact-duplicate coordinates are folded, and coordinate ties
are broken deterministically (lexicographically smallest label wins) -- which
is what allows results to stream in whatever order process-pool shards
complete while still reproducing the same frontier, labels included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate design point: improvement bought at a cost triple."""

    improvement: float
    energy_pct: float
    area_pct: float
    exec_time_pct: float
    label: str = ""
    payload: object = None

    def _coordinates(self) -> tuple[float, float, float, float]:
        return (self.improvement, self.energy_pct, self.area_pct, self.exec_time_pct)

    def dominates(self, other: "ParetoPoint") -> bool:
        """At least as good on every axis, strictly better on at least one."""
        if (self.improvement < other.improvement
                or self.energy_pct > other.energy_pct
                or self.area_pct > other.area_pct
                or self.exec_time_pct > other.exec_time_pct):
            return False
        return self._coordinates() != other._coordinates()


class ParetoFrontier:
    """Dominance-pruned set of exploration points, filled incrementally."""

    def __init__(self) -> None:
        self._points: list[ParetoPoint] = []
        self._seen = 0

    # ------------------------------------------------------------------ building
    def add(self, point: ParetoPoint) -> bool:
        """Offer one point; returns True when it joins the frontier.

        Exact coordinate duplicates of a kept point are folded with a
        deterministic tie-break -- the lexicographically smallest label wins
        (first offer wins among equal labels) -- so the surviving point,
        label and payload included, does not depend on the order process-pool
        shards happen to complete in.
        """
        self._seen += 1
        coordinates = point._coordinates()
        for position, kept in enumerate(self._points):
            if kept._coordinates() == coordinates:
                if point.label < kept.label:
                    self._points[position] = point
                    return True
                return False
            if kept.dominates(point):
                return False
        self._points = [kept for kept in self._points if not point.dominates(kept)]
        self._points.append(point)
        return True

    def update(self, points: Iterable[ParetoPoint]) -> int:
        """Offer many points; returns how many survived."""
        return sum(1 for point in points if self.add(point))

    @classmethod
    def from_points(cls, points: Iterable[ParetoPoint],
                    seen: int | None = None) -> "ParetoFrontier":
        """Build a frontier by offering ``points``; ``seen`` restores sweep
        coverage recorded elsewhere (e.g. a persisted frontier whose dominated
        points were pruned before storage)."""
        frontier = cls()
        frontier.update(points)
        if seen is not None:
            frontier._seen = max(seen, frontier._seen)
        return frontier

    # ------------------------------------------------------------------ queries
    @property
    def seen(self) -> int:
        """Total points offered (kept or dominated) -- sweep coverage."""
        return self._seen

    def points(self) -> list[ParetoPoint]:
        """Frontier points sorted by energy (the paper's primary cost axis)."""
        return sorted(self._points,
                      key=lambda p: (p.energy_pct, -p.improvement, p.label))

    def cheapest_at_least(self, improvement: float) -> ParetoPoint | None:
        """Minimum-energy frontier point achieving ``improvement`` or better."""
        candidates = [p for p in self._points if p.improvement >= improvement]
        if not candidates:
            return None
        return min(candidates, key=lambda p: (p.energy_pct, -p.improvement, p.label))

    def envelope(self) -> list[tuple[float, float]]:
        """The (improvement, energy) trade-off curve of the frontier."""
        return [(p.improvement, p.energy_pct) for p in
                sorted(self._points, key=lambda p: (p.improvement, p.energy_pct))]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self.points())
