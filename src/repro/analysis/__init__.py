"""Analysis tools: benchmark dependence (Sec. 4) and Pareto frontiers."""

from repro.analysis.benchmark_dependence import (
    BenchmarkDependenceStudy,
    TrainValidateResult,
    TrainValidateSplit,
    make_splits,
    paired_p_value,
)
from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.analysis.similarity import benchmark_deciles, subset_similarity

__all__ = [
    "BenchmarkDependenceStudy",
    "TrainValidateResult",
    "TrainValidateSplit",
    "make_splits",
    "paired_p_value",
    "ParetoFrontier",
    "ParetoPoint",
    "benchmark_deciles",
    "subset_similarity",
]
