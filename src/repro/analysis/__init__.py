"""Analysis tools: benchmark dependence (Sec. 4), Pareto frontiers and
their persistence."""

from repro.analysis.benchmark_dependence import (
    BenchmarkDependenceStudy,
    TrainValidateResult,
    TrainValidateSplit,
    make_splits,
    paired_p_value,
)
from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.analysis.similarity import benchmark_deciles, subset_similarity
from repro.analysis.store import (
    STORE_VERSION,
    StoredFrontier,
    frontier_from_dict,
    frontier_to_dict,
    load_frontier,
    merge_frontiers,
    save_frontier,
)

__all__ = [
    "BenchmarkDependenceStudy",
    "TrainValidateResult",
    "TrainValidateSplit",
    "make_splits",
    "paired_p_value",
    "ParetoFrontier",
    "ParetoPoint",
    "benchmark_deciles",
    "subset_similarity",
    "STORE_VERSION",
    "StoredFrontier",
    "frontier_from_dict",
    "frontier_to_dict",
    "load_frontier",
    "merge_frontiers",
    "save_frontier",
]
