"""Benchmark-dependence analysis (Sec. 4 of the paper)."""

from repro.analysis.benchmark_dependence import (
    BenchmarkDependenceStudy,
    TrainValidateResult,
    TrainValidateSplit,
    make_splits,
    paired_p_value,
)
from repro.analysis.similarity import benchmark_deciles, subset_similarity

__all__ = [
    "BenchmarkDependenceStudy",
    "TrainValidateResult",
    "TrainValidateSplit",
    "make_splits",
    "paired_p_value",
    "benchmark_deciles",
    "subset_similarity",
]
