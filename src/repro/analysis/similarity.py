"""Vulnerability-subset similarity across benchmarks (Eq. 2, Table 27).

Per benchmark, flip-flops are ranked by decreasing SDC+DUE vulnerability and
split into deciles (subset 1 = most vulnerable 10%, ..., subset 10 = least).
The similarity of subset *x* across benchmarks is the size of the
intersection of all benchmarks' subset *x* divided by the size of their
union.  The paper finds only the first decile (and the always-vanish tail)
to be consistent across benchmarks.
"""

from __future__ import annotations

from repro.faultinjection.vulnerability import VulnerabilityMap


def benchmark_deciles(vulnerability: VulnerabilityMap, benchmark: str,
                      deciles: int = 10) -> list[set[int]]:
    """Split the flip-flops of one benchmark's ranking into vulnerability deciles."""
    total = vulnerability.total_flip_flops
    ranking = vulnerability.ranked_by_vulnerability([benchmark])
    size = max(1, total // deciles)
    subsets = []
    for index in range(deciles):
        start = index * size
        end = total if index == deciles - 1 else (index + 1) * size
        subsets.append(set(ranking[start:end]))
    return subsets


def subset_similarity(vulnerability: VulnerabilityMap,
                      benchmarks: list[str] | None = None,
                      deciles: int = 10) -> list[float]:
    """Eq. 2: |intersection| / |union| of each decile across benchmarks."""
    names = benchmarks if benchmarks is not None else vulnerability.benchmarks
    if not names:
        return [0.0] * deciles
    per_benchmark = [benchmark_deciles(vulnerability, name, deciles) for name in names]
    similarities = []
    for decile in range(deciles):
        subsets = [deciles_list[decile] for deciles_list in per_benchmark]
        union = set().union(*subsets)
        intersection = set(subsets[0]).intersection(*subsets[1:]) if subsets else set()
        similarities.append(len(intersection) / len(union) if union else 0.0)
    return similarities
