"""Adaptive per-site convergence-check schedules.

The convergence gate probes an injected replay against the golden
fingerprint grid.  A fixed schedule probes every grid cycle, which is wasted
work in both directions: replays that re-converge do so within a few grid
points of the injection (dense checks after that are pure overhead), and
replays that never re-converge pay for hundreds of doomed probes.

A :class:`SitePlan` shapes the probe schedule for one injection site: dense
checks for the first ``dense_window`` grid points after the injection, then
exponential backoff (power-of-two gaps) capped at ``max_gap``.
:class:`ConvergenceSchedule` *learns* per-site plans from campaign history:
sites that historically re-converge fast keep a dense window sized to their
observed re-convergence lag; sites that historically diverge drop to the
minimum window and go sparse almost immediately.

Determinism contract: plans are pure functions of the (deterministically
merged) observation history, and skipping a probe can only delay -- never
change -- the convergence verdict, because a replay whose fingerprint
matches the golden grid at cycle ``c`` stays bit-identical to the golden
run at every later grid cycle too.  Outcome counts are therefore bit-exact
across serial / parallel / batched executors and across schedule choices;
only the saved-cycle telemetry shifts.  Observations fold through
:class:`~repro.engine.executors.ChunkResult` as per-site integer sums, so
merge order cannot matter.
"""

from __future__ import annotations

from dataclasses import dataclass

DENSE_WINDOW = 8
"""Default dense-check window, in grid points after the injection."""

MAX_GAP = 32
"""Backoff cap: past the dense window, probe at least every MAX_GAP points."""

MIN_DENSE_WINDOW = 2
"""Floor for learned windows: even a historically diverging site keeps a
couple of early probes, so a fault that suddenly vanishes still terminates
near the injection."""

MAX_DENSE_WINDOW = 64
"""Ceiling for learned windows, bounding worst-case probe density."""

_DIVERGENCE_RATIO = 4
"""A site is treated as historically diverging once its diverged count
reaches this multiple of its converged count (with at least 2 samples)."""


@dataclass(frozen=True)
class SitePlan:
    """Probe schedule for one injection site (pure, picklable)."""

    dense_window: int = DENSE_WINDOW
    max_gap: int = MAX_GAP

    def should_check(self, grid_points_elapsed: int) -> bool:
        """Whether to probe at the ``grid_points_elapsed``-th point after
        the injection (1-based; 0 or negative never probes)."""
        k = grid_points_elapsed
        if k <= 0:
            return False
        if k <= self.dense_window:
            return True
        k -= self.dense_window
        # Exponential backoff past the window, with a hard cap so a replay
        # that converges late is still caught within max_gap points.
        return k % self.max_gap == 0 or (k & (k - 1)) == 0


class ConvergenceSchedule:
    """Per-site plan source, folding observations across campaigns.

    Held by the engine (one per :class:`~repro.engine.engine.InjectionEngine`
    with ``adaptive_check_spacing`` on); observations arrive as the merged
    ``ChunkResult.site_observations`` sums, keyed by flat fault-site index.
    """

    def __init__(self) -> None:
        self._history: dict[int, tuple[int, int, int]] = {}

    def observe(self, observations: dict[int, tuple[int, int, int]]) -> None:
        """Fold ``{site: (converged, diverged, lag_cycles)}`` sums in."""
        for site, (converged, diverged, lag) in observations.items():
            have = self._history.get(site, (0, 0, 0))
            self._history[site] = (have[0] + converged, have[1] + diverged,
                                   have[2] + lag)

    def plan(self, site: int, fingerprint_interval: int) -> SitePlan:
        """Plan for ``site`` given the grid spacing, from history."""
        converged, diverged, lag_cycles = self._history.get(site, (0, 0, 0))
        if diverged >= 2 and diverged >= _DIVERGENCE_RATIO * max(converged, 1):
            return SitePlan(dense_window=MIN_DENSE_WINDOW)
        if converged:
            # Size the dense window to the observed mean re-convergence lag
            # (in grid points), plus slack for run-to-run variation.
            mean_lag_points = lag_cycles / (converged
                                            * max(1, fingerprint_interval))
            dense = int(mean_lag_points) + 2
            return SitePlan(dense_window=max(MIN_DENSE_WINDOW,
                                             min(MAX_DENSE_WINDOW, dense)))
        return SitePlan()

    def plans_for(self, sites, fingerprint_interval: int
                  ) -> dict[int, SitePlan]:
        """Plans for every distinct site of a campaign plan."""
        return {site: self.plan(site, fingerprint_interval)
                for site in set(sites)}

    def history(self) -> dict[int, tuple[int, int, int]]:
        """Copy of the folded per-site history (for tests/telemetry)."""
        return dict(self._history)
