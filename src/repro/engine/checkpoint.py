"""Checkpointed golden runs.

The golden (error-free) run is the reference every injected run is classified
against, and -- once checkpointed -- the springboard that makes injected runs
cheap: a run with an injection at cycle ``c`` restores the nearest snapshot
at or below ``c`` and simulates only the remaining cycles, instead of
re-simulating from cycle 0.  For injections uniformly distributed over the
golden run this roughly halves simulated cycles per injection; for campaigns
that target late application regions the saving is far larger.

Golden runs depend only on (core, program) -- never on the protection
configuration, which acts purely on injected runs -- so a
:class:`GoldenRunCache` shares one recorded run across every protection
config evaluated for the same workload.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.isa.encoding import encode_instruction
from repro.isa.program import Program
from repro.microarch.core import BaseCore, CoreSnapshot, DEFAULT_MAX_CYCLES
from repro.microarch.events import RunResult
from repro.obs import Instrumentation
from repro.obs.phases import (
    COUNT_ARTIFACTS_LOADED,
    COUNT_ARTIFACTS_SAVED,
    COUNT_FINGERPRINTS,
    COUNT_GOLDEN_CACHE_HITS,
    COUNT_GOLDEN_RECORDS,
    COUNT_SNAPSHOTS,
    CYCLES_GOLDEN,
    PHASE_GOLDEN_RECORD,
)

INITIAL_CHECKPOINT_INTERVAL = 64
"""Starting snapshot spacing for the adaptive recorder."""

DEFAULT_MAX_CHECKPOINTS = 48
"""Snapshot-count budget; the adaptive recorder doubles the interval (and
thins existing snapshots) whenever the budget is exceeded, so memory stays
bounded regardless of how long the golden run turns out to be."""

FINGERPRINT_DENSITY = 8
"""How much denser the adaptive fingerprint grid starts than the snapshot
grid.  A fingerprint is a 16-byte digest where a snapshot is a full state
copy, so the grid the convergence check probes can afford to be ~8-16x
finer -- the finer the grid, the earlier a re-converged injected run is
caught."""

INITIAL_FINGERPRINT_INTERVAL = INITIAL_CHECKPOINT_INTERVAL // FINGERPRINT_DENSITY
"""Starting fingerprint spacing for the adaptive recorder."""

DEFAULT_MAX_FINGERPRINTS = DEFAULT_MAX_CHECKPOINTS * 16
"""Fingerprint-count budget, with the same doubling/thinning policy as the
snapshot budget (16 bytes each, so the grid stays ~12 KiB at worst)."""


@dataclass
class CheckpointedGoldenRun:
    """A golden run plus the periodic core snapshots recorded during it.

    Attributes:
        golden: the golden :class:`RunResult` (identical to what an
            unrecorded run would produce -- recording only observes).
        snapshots: core snapshots in ascending cycle order.
        interval: final snapshot spacing in cycles.
        fingerprints: dense grid of :meth:`BaseCore.state_fingerprint`
            digests, keyed by cycle.  An injected run whose fingerprint
            equals ``fingerprints[c]`` at cycle ``c`` is bit-identical to the
            golden run from ``c`` onwards and can stop simulating.
        fingerprint_interval: final fingerprint spacing in cycles (0 when no
            grid was recorded).
    """

    golden: RunResult
    snapshots: list[CoreSnapshot] = field(default_factory=list)
    interval: int = 0
    fingerprints: dict[int, bytes] = field(default_factory=dict)
    fingerprint_interval: int = 0

    def __post_init__(self) -> None:
        self._cycles = [snapshot.cycle for snapshot in self.snapshots]

    def nearest(self, cycle: int) -> CoreSnapshot | None:
        """Latest snapshot taken at or before ``cycle`` (None: start from 0)."""
        index = bisect.bisect_right(self._cycles, cycle)
        if index == 0:
            return None
        return self.snapshots[index - 1]

    @property
    def checkpoint_count(self) -> int:
        return len(self.snapshots)

    @property
    def fingerprint_count(self) -> int:
        return len(self.fingerprints)


class _CheckpointRecorder:
    """Cycle hook that snapshots the core on an (adaptively growing) grid."""

    def __init__(self, interval: int | None, max_checkpoints: int):
        self.adaptive = interval is None
        self.interval = interval if interval else INITIAL_CHECKPOINT_INTERVAL
        self.max_checkpoints = max(1, max_checkpoints)
        self.snapshots: list[CoreSnapshot] = []

    def __call__(self, core: BaseCore, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval != 0:
            return
        self.snapshots.append(core.snapshot())
        if self.adaptive and len(self.snapshots) > self.max_checkpoints:
            self.interval *= 2
            self.snapshots = [s for s in self.snapshots
                              if s.cycle % self.interval == 0]


class _FingerprintRecorder:
    """Cycle hook that fingerprints the core on an (adaptively growing) grid.

    Same doubling/thinning policy as the snapshot recorder, but the grid
    starts :data:`FINGERPRINT_DENSITY` times finer -- a fingerprint is a
    16-byte digest, not a state copy.
    """

    def __init__(self, interval: int | None, max_fingerprints: int,
                 rolling: bool = False):
        self.adaptive = interval is None
        self.interval = interval if interval else max(
            1, INITIAL_FINGERPRINT_INTERVAL)
        self.max_fingerprints = max(1, max_fingerprints)
        self.rolling = rolling
        self.fingerprints: dict[int, bytes] = {}

    def __call__(self, core: BaseCore, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval != 0:
            return
        # The rolling digest is bit-identical to the full one by contract,
        # so a rolling-recorded grid is interchangeable with a full one --
        # recording just pays O(dirty state) per grid point instead of O(n).
        self.fingerprints[cycle] = (core.rolling_fingerprint() if self.rolling
                                    else core.state_fingerprint())
        if self.adaptive and len(self.fingerprints) > self.max_fingerprints:
            self.interval *= 2
            self.fingerprints = {c: digest
                                 for c, digest in self.fingerprints.items()
                                 if c % self.interval == 0}


def record_checkpointed_golden(core: BaseCore, program: Program,
                               interval: int | None = None,
                               max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
                               max_cycles: int = DEFAULT_MAX_CYCLES,
                               fingerprint_interval: int | None = None,
                               max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS,
                               rolling: bool = False,
                               obs: Instrumentation | None = None,
                               ) -> CheckpointedGoldenRun:
    """Run ``program`` on ``core`` once, recording snapshots + fingerprints.

    ``interval=None`` selects the adaptive snapshot grid (bounded snapshot
    count for any run length); ``interval=0`` disables checkpointing entirely
    (every injected run replays from cycle 0 -- the pre-engine behaviour,
    kept for benchmarking baselines).  ``fingerprint_interval`` works the
    same way for the dense convergence grid: ``None`` adapts from a grid
    :data:`FINGERPRINT_DENSITY` times finer than the snapshot grid, ``0``
    records no fingerprints (injected runs always simulate to termination --
    the pre-convergence baseline).  ``rolling=True`` records the grid through
    :meth:`BaseCore.rolling_fingerprint` (bit-identical digests, O(dirty
    state) per grid point).

    ``obs`` (see :mod:`repro.obs`) wraps the recording in a
    ``golden.record`` span/timer and counts recorded cycles, snapshots and
    fingerprints; ``None`` records nothing.
    """
    if interval is not None and interval < 0:
        raise ValueError(f"checkpoint interval must be >= 0, got {interval}")
    if fingerprint_interval is not None and fingerprint_interval < 0:
        raise ValueError(f"fingerprint interval must be >= 0, "
                         f"got {fingerprint_interval}")
    hooks = []
    checkpointer = None
    if interval != 0:
        checkpointer = _CheckpointRecorder(interval, max_checkpoints)
        hooks.append(checkpointer)
    fingerprinter = None
    if fingerprint_interval != 0:
        fingerprinter = _FingerprintRecorder(fingerprint_interval,
                                             max_fingerprints,
                                             rolling=rolling)
        hooks.append(fingerprinter)
    if not hooks:
        hook = None
    elif len(hooks) == 1:
        hook = hooks[0]
    else:
        def hook(core: BaseCore, cycle: int,
                 _hooks: tuple = tuple(hooks)) -> None:
            for recorder in _hooks:
                recorder(core, cycle)
    if obs is None:
        obs = Instrumentation.off()
    with obs.tracer.span(PHASE_GOLDEN_RECORD,
                         args={"core": core.name,
                               "program": program.name}) as span:
        with obs.metrics.timer(PHASE_GOLDEN_RECORD):
            golden = core.run(program, max_cycles=max_cycles, cycle_hook=hook)
        span.note(cycles=golden.cycles,
                  snapshots=len(checkpointer.snapshots) if checkpointer else 0)
    metrics = obs.metrics
    metrics.inc(COUNT_GOLDEN_RECORDS)
    metrics.inc(CYCLES_GOLDEN, golden.cycles)
    if checkpointer:
        metrics.inc(COUNT_SNAPSHOTS, len(checkpointer.snapshots))
    if fingerprinter:
        metrics.inc(COUNT_FINGERPRINTS, len(fingerprinter.fingerprints))
    return CheckpointedGoldenRun(
        golden=golden,
        snapshots=checkpointer.snapshots if checkpointer else [],
        interval=checkpointer.interval if checkpointer else 0,
        fingerprints=fingerprinter.fingerprints if fingerprinter else {},
        fingerprint_interval=(fingerprinter.interval if fingerprinter else 0))


def _program_fingerprint(program: Program) -> tuple:
    """Content identity of a program (workloads rebuild equal Program objects
    on every ``.program()`` call, so object identity is useless as a key)."""
    return (program.name, program.entry_point, program.data.base,
            tuple(program.data.words),
            tuple(encode_instruction(i) for i in program.instructions))


def golden_run_key(core: BaseCore, program: Program, *,
                   interval: int | None = None,
                   max_checkpoints: int | None = None,
                   max_cycles: int | None = None,
                   fingerprint_interval: int | None = None,
                   max_fingerprints: int | None = None) -> tuple:
    """Canonical identity tuple of one checkpointed golden run.

    Everything the recorded artifact is a function of: the core's class,
    name and flip-flop count (two differently-built cores sharing a
    user-supplied name must never exchange snapshots -- a snapshot restored
    onto the wrong model would misclassify every outcome), the program's
    content fingerprint, and the recording knobs.  The in-memory cache keys
    on this tuple directly; the persistent artifact store hashes it into a
    content address (:func:`repro.engine.artifacts.artifact_digest`), so
    the two tiers can never disagree about what a key means.  ``None``
    budget knobs normalise to the module defaults so explicit-default and
    default calls address the same artifact.
    """
    return (type(core).__qualname__, core.name, core.flip_flop_count,
            _program_fingerprint(program), interval,
            DEFAULT_MAX_CHECKPOINTS if max_checkpoints is None
            else max_checkpoints,
            DEFAULT_MAX_CYCLES if max_cycles is None else max_cycles,
            fingerprint_interval,
            DEFAULT_MAX_FINGERPRINTS if max_fingerprints is None
            else max_fingerprints)


@dataclass(frozen=True)
class GoldenCacheStats:
    """Point-in-time health readout of one :class:`GoldenRunCache`.

    ``hits``/``misses`` count the in-memory tier; ``artifacts_loaded`` /
    ``artifacts_saved`` the disk tier (always 0 without a store).  A miss
    satisfied by a loaded artifact is *not* a recording -- the number of
    golden runs actually simulated is :attr:`recorded`.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    artifacts_loaded: int = 0
    artifacts_saved: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def recorded(self) -> int:
        """Golden runs actually simulated (misses the store could not fill)."""
        return self.misses - self.artifacts_loaded

    def merged_with(self, other: "GoldenCacheStats") -> "GoldenCacheStats":
        """Field-wise sum, for aggregating per-worker cache stats.

        ``entries``/``max_entries`` sum too: the merge describes the fleet
        of caches (total held entries / total capacity), not any one LRU.
        """
        return GoldenCacheStats(
            hits=self.hits + other.hits, misses=self.misses + other.misses,
            entries=self.entries + other.entries,
            max_entries=self.max_entries + other.max_entries,
            artifacts_loaded=self.artifacts_loaded + other.artifacts_loaded,
            artifacts_saved=self.artifacts_saved + other.artifacts_saved)


class GoldenRunCache:
    """Two-tier cache of checkpointed golden runs, keyed by (core, program).

    The key is the core's identity plus a content fingerprint of the
    program, so repeated campaigns on the same workload -- e.g. one per
    protection configuration -- pay for the golden run and its snapshots
    exactly once.  With a :class:`~repro.engine.artifacts.GoldenArtifactStore`
    attached (``store``, or just ``EngineConfig(artifact_dir=...)``), the
    in-memory LRU sits on top of a persistent content-addressed disk tier:
    a memory miss first tries to *load* the artifact (integrity-guarded;
    any defective blob degrades to re-recording), and a fresh recording is
    persisted on the way out -- so pool workers and repeated processes join
    warm instead of re-simulating golden runs from cycle 0.

    ``max_entries`` bounds memory: a multi-family synthetic sweep touches one
    distinct program per workload, so suites wider than the default of 8
    should raise it (``run_suite_campaign``/``run_synthetic_sweep`` expose a
    ``max_cache_entries`` knob) -- :meth:`stats` makes thrash visible.
    """

    def __init__(self, max_entries: int = 8, store=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self._entries: OrderedDict[tuple, CheckpointedGoldenRun] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.artifacts_loaded = 0
        self.artifacts_saved = 0

    def get(self, core: BaseCore, program: Program, *,
            interval: int | None = None,
            max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
            max_cycles: int = DEFAULT_MAX_CYCLES,
            fingerprint_interval: int | None = None,
            max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS,
            rolling: bool = False,
            obs: Instrumentation | None = None,
            ) -> CheckpointedGoldenRun:
        """Return the checkpointed golden run: memory, then the artifact
        store, then recording (persisting the fresh recording).

        ``rolling`` only shapes how a cache-missing run is *recorded* (the
        rolling digest is bit-identical by contract), so it is deliberately
        not part of the cache key: rolling and full engines share artifacts.
        """
        key = golden_run_key(core, program, interval=interval,
                             max_checkpoints=max_checkpoints,
                             max_cycles=max_cycles,
                             fingerprint_interval=fingerprint_interval,
                             max_fingerprints=max_fingerprints)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            if obs is not None:
                obs.metrics.inc(COUNT_GOLDEN_CACHE_HITS)
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        recorded = None
        if self.store is not None:
            recorded = self.store.load_key(key)
            if recorded is not None:
                self.artifacts_loaded += 1
                if obs is not None:
                    obs.metrics.inc(COUNT_ARTIFACTS_LOADED)
        if recorded is None:
            recorded = record_checkpointed_golden(
                core, program, interval=interval,
                max_checkpoints=max_checkpoints, max_cycles=max_cycles,
                fingerprint_interval=fingerprint_interval,
                max_fingerprints=max_fingerprints, rolling=rolling, obs=obs)
            if self.store is not None and \
                    self.store.save_key(key, recorded) is not None:
                self.artifacts_saved += 1
                if obs is not None:
                    obs.metrics.inc(COUNT_ARTIFACTS_SAVED)
        self._entries[key] = recorded
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return recorded

    def attach_store(self, store) -> None:
        """Attach a persistent artifact store (no-op when one is attached).

        Keeping the first-attached store makes repeated
        ``EngineConfig(artifact_dir=...)`` engines sharing one cache stable:
        the cache's disk tier never silently switches directories mid-run.
        """
        if self.store is None:
            self.store = store

    def stats(self) -> GoldenCacheStats:
        """Hit/miss/size counters since construction (or the last clear)."""
        return GoldenCacheStats(hits=self.hits, misses=self.misses,
                                entries=len(self._entries),
                                max_entries=self.max_entries,
                                artifacts_loaded=self.artifacts_loaded,
                                artifacts_saved=self.artifacts_saved)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.artifacts_loaded = 0
        self.artifacts_saved = 0

    def __len__(self) -> int:
        return len(self._entries)


def cache_for_artifact_dir(artifact_dir, max_entries: int | None = None,
                           ) -> GoldenRunCache:
    """The process-wide store-backed cache for one artifact directory.

    One shared cache per resolved directory keeps the in-memory tier shared
    across every engine pointed at the same store (the same sharing the
    storeless :data:`GOLDEN_RUN_CACHE` provides), while different
    directories stay fully isolated.  ``max_entries`` sizes the cache on
    first use only (the registry never shrinks a live cache).
    """
    from pathlib import Path

    from repro.engine.artifacts import GoldenArtifactStore

    root = Path(artifact_dir).expanduser().resolve()
    cache = _STORE_CACHES.get(root)
    if cache is None:
        cache = GoldenRunCache(
            max_entries=max_entries if max_entries is not None else 8,
            store=GoldenArtifactStore(root))
        _STORE_CACHES[root] = cache
    return cache


# audit: allow[module-mutable-state] parent-process-only interning table; workers receive caches via the executor payload, never this dict
_STORE_CACHES: dict = {}
"""Per-artifact-directory shared caches (see :func:`cache_for_artifact_dir`)."""


def resolve_golden_cache(golden_cache: GoldenRunCache | None,
                         max_cache_entries: int | None,
                         artifact_dir=None) -> GoldenRunCache | None:
    """Resolve the exclusive (``golden_cache``, ``max_cache_entries``) pair
    the suite/sweep runners accept, plus the optional persistent store.

    Returns the explicit cache, a fresh cache sized to ``max_cache_entries``,
    the shared store-backed cache for ``artifact_dir``, or None when nothing
    was given (the caller then applies its own default).  An ``artifact_dir``
    combines with either sizing option by attaching the store to the
    resolved cache (first store wins on an explicit cache that already has
    one).
    """
    if golden_cache is not None and max_cache_entries is not None:
        raise ValueError("pass either golden_cache or max_cache_entries, "
                         "not both")
    if max_cache_entries is not None:
        golden_cache = GoldenRunCache(max_entries=max_cache_entries)
    if artifact_dir is None:
        return golden_cache
    if golden_cache is None:
        return cache_for_artifact_dir(artifact_dir)
    from repro.engine.artifacts import GoldenArtifactStore

    golden_cache.attach_store(GoldenArtifactStore(artifact_dir))
    return golden_cache


GOLDEN_RUN_CACHE = GoldenRunCache()
"""Process-wide default cache, shared by every engine unless one is passed."""
