"""Checkpointed golden runs.

The golden (error-free) run is the reference every injected run is classified
against, and -- once checkpointed -- the springboard that makes injected runs
cheap: a run with an injection at cycle ``c`` restores the nearest snapshot
at or below ``c`` and simulates only the remaining cycles, instead of
re-simulating from cycle 0.  For injections uniformly distributed over the
golden run this roughly halves simulated cycles per injection; for campaigns
that target late application regions the saving is far larger.

Golden runs depend only on (core, program) -- never on the protection
configuration, which acts purely on injected runs -- so a
:class:`GoldenRunCache` shares one recorded run across every protection
config evaluated for the same workload.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.isa.encoding import encode_instruction
from repro.isa.program import Program
from repro.microarch.core import BaseCore, CoreSnapshot, DEFAULT_MAX_CYCLES
from repro.microarch.events import RunResult

INITIAL_CHECKPOINT_INTERVAL = 64
"""Starting snapshot spacing for the adaptive recorder."""

DEFAULT_MAX_CHECKPOINTS = 48
"""Snapshot-count budget; the adaptive recorder doubles the interval (and
thins existing snapshots) whenever the budget is exceeded, so memory stays
bounded regardless of how long the golden run turns out to be."""


@dataclass
class CheckpointedGoldenRun:
    """A golden run plus the periodic core snapshots recorded during it.

    Attributes:
        golden: the golden :class:`RunResult` (identical to what an
            unrecorded run would produce -- recording only observes).
        snapshots: core snapshots in ascending cycle order.
        interval: final snapshot spacing in cycles.
    """

    golden: RunResult
    snapshots: list[CoreSnapshot] = field(default_factory=list)
    interval: int = 0

    def __post_init__(self) -> None:
        self._cycles = [snapshot.cycle for snapshot in self.snapshots]

    def nearest(self, cycle: int) -> CoreSnapshot | None:
        """Latest snapshot taken at or before ``cycle`` (None: start from 0)."""
        index = bisect.bisect_right(self._cycles, cycle)
        if index == 0:
            return None
        return self.snapshots[index - 1]

    @property
    def checkpoint_count(self) -> int:
        return len(self.snapshots)


class _CheckpointRecorder:
    """Cycle hook that snapshots the core on an (adaptively growing) grid."""

    def __init__(self, interval: int | None, max_checkpoints: int):
        self.adaptive = interval is None
        self.interval = interval if interval else INITIAL_CHECKPOINT_INTERVAL
        self.max_checkpoints = max(1, max_checkpoints)
        self.snapshots: list[CoreSnapshot] = []

    def __call__(self, core: BaseCore, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval != 0:
            return
        self.snapshots.append(core.snapshot())
        if self.adaptive and len(self.snapshots) > self.max_checkpoints:
            self.interval *= 2
            self.snapshots = [s for s in self.snapshots
                              if s.cycle % self.interval == 0]


def record_checkpointed_golden(core: BaseCore, program: Program,
                               interval: int | None = None,
                               max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
                               max_cycles: int = DEFAULT_MAX_CYCLES,
                               ) -> CheckpointedGoldenRun:
    """Run ``program`` on ``core`` once, recording periodic snapshots.

    ``interval=None`` selects the adaptive grid (bounded snapshot count for
    any run length); ``interval=0`` disables checkpointing entirely (the
    result carries the golden run only, and every injected run replays from
    cycle 0 -- the pre-engine behaviour, kept for benchmarking baselines).
    """
    if interval is not None and interval < 0:
        raise ValueError(f"checkpoint interval must be >= 0, got {interval}")
    if interval == 0:
        golden = core.run(program, max_cycles=max_cycles)
        return CheckpointedGoldenRun(golden=golden, snapshots=[], interval=0)
    recorder = _CheckpointRecorder(interval, max_checkpoints)
    golden = core.run(program, max_cycles=max_cycles, cycle_hook=recorder)
    return CheckpointedGoldenRun(golden=golden, snapshots=recorder.snapshots,
                                 interval=recorder.interval)


def _program_fingerprint(program: Program) -> tuple:
    """Content identity of a program (workloads rebuild equal Program objects
    on every ``.program()`` call, so object identity is useless as a key)."""
    return (program.name, program.entry_point, program.data.base,
            tuple(program.data.words),
            tuple(encode_instruction(i) for i in program.instructions))


class GoldenRunCache:
    """LRU cache of checkpointed golden runs, keyed by (core, program).

    The key is the core's name plus a content fingerprint of the program, so
    repeated campaigns on the same workload -- e.g. one per protection
    configuration -- pay for the golden run and its snapshots exactly once.
    """

    def __init__(self, max_entries: int = 8):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, CheckpointedGoldenRun] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, core: BaseCore, program: Program, *,
            interval: int | None = None,
            max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
            max_cycles: int = DEFAULT_MAX_CYCLES) -> CheckpointedGoldenRun:
        """Return the checkpointed golden run, recording it on first use."""
        # Core class and flip-flop count guard against two differently-built
        # cores sharing a user-supplied name: a snapshot restored onto the
        # wrong model would misclassify every outcome.
        key = (type(core).__qualname__, core.name, core.flip_flop_count,
               _program_fingerprint(program), interval,
               max_checkpoints, max_cycles)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        recorded = record_checkpointed_golden(
            core, program, interval=interval, max_checkpoints=max_checkpoints,
            max_cycles=max_cycles)
        self._entries[key] = recorded
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return recorded

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


GOLDEN_RUN_CACHE = GoldenRunCache()
"""Process-wide default cache, shared by every engine unless one is passed."""
