"""Content-addressed persistent golden-artifact store.

Recording a golden run is the one cost the engine's accelerations cannot
amortise away: checkpointed replay, convergence gating and batched lockstep
all *start* from the recorded snapshots and fingerprint grid, so every new
process -- every pool worker, every repeated campaign, every sweep rerun --
used to pay for the recording again from cycle 0.

This module makes golden artifacts durable.  A
:class:`~repro.engine.checkpoint.CheckpointedGoldenRun` (golden
:class:`~repro.microarch.events.RunResult`, snapshots, fingerprint grid,
recording knobs) serialises to one on-disk blob whose filename is a blake2b
digest of everything the run is a function of: the core's class and
configuration fingerprint, the program *bytes*, and the snapshot /
fingerprint recording parameters.  Content addressing is what makes the
store safe to share: equal digests imply the artifact would be re-recorded
bit-identically, so a loaded artifact is interchangeable with a fresh
recording -- and a (core, program) pair is recorded exactly once per
machine, ever, no matter how many protection configs, workers or campaigns
replay it.

Robustness contract (exercised in ``tests/test_artifacts.py``):

* writes are atomic -- blob bytes go to a writer-unique temp file that is
  ``os.replace``d into place, so concurrent recorders racing on one key
  both succeed and readers only ever observe complete blobs;
* loads are integrity-guarded -- a version/format header, the key digest
  and a payload digest are all checked before the payload is unpickled;
  truncated, corrupted, mis-keyed or future-versioned blobs degrade to a
  cache miss (the caller re-records and overwrites), never a crash and
  never stale state;
* a store on a read-only or vanished filesystem degrades to recording
  without persistence (saves count as errors, loads as misses).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.engine.checkpoint import CheckpointedGoldenRun, golden_run_key
from repro.isa.program import Program
from repro.microarch.core import BaseCore

ARTIFACT_FORMAT = "repro.golden-artifact"
"""Blob discriminator, so stray pickle files fail fast with a clean miss."""

ARTIFACT_VERSION = 2
"""Blob layout version; bump on incompatible changes.  A store never reads
a version it does not understand -- the artifact is simply re-recorded.

Version 2: the fingerprint grid switched to the tree digest composition
(header + latch banks + microarchitecture component), so version-1 grids
are not comparable against either fingerprint path of this build."""

ARTIFACT_SUFFIX = ".golden.pkl"
"""Filename suffix of every blob in a store directory."""

_DIGEST_SIZE = 20
"""Key-digest size in bytes (40 hex chars -- comfortably collision-free for
per-machine artifact counts while keeping directory listings readable)."""


def artifact_digest(core: BaseCore, program: Program, *,
                    interval: int | None = None,
                    max_checkpoints: int | None = None,
                    max_cycles: int | None = None,
                    fingerprint_interval: int | None = None,
                    max_fingerprints: int | None = None) -> str:
    """Content address of one golden artifact, as a hex digest.

    Hashes exactly the identity tuple the in-memory
    :class:`~repro.engine.checkpoint.GoldenRunCache` keys on -- core class +
    name + flip-flop count, the program's content fingerprint (entry point,
    data words, encoded instructions), and every recording knob -- so the
    disk store and the memory tier can never disagree about what a key
    means.  Digests are process- and host-independent (plain-data pickle,
    no ``hash()`` randomisation), which is what lets one store warm every
    worker on a machine.
    """
    key = golden_run_key(core, program, interval=interval,
                         max_checkpoints=max_checkpoints,
                         max_cycles=max_cycles,
                         fingerprint_interval=fingerprint_interval,
                         max_fingerprints=max_fingerprints)
    return digest_of_key(key)


def digest_of_key(key: tuple) -> str:
    """Hex digest of an already-built golden-run identity tuple.

    ``pickle`` of plain data (strings, ints, bytes, tuples) is deterministic
    across processes and hosts, unlike ``hash()``; the same pattern backs the
    engine's state fingerprints.
    """
    return hashlib.blake2b(pickle.dumps(key, protocol=4),
                           digest_size=_DIGEST_SIZE).hexdigest()


@dataclass(frozen=True)
class ArtifactStoreStats:
    """Point-in-time health readout of one :class:`GoldenArtifactStore`.

    ``loaded`` / ``saved`` / ``errors`` count this store object's own
    traffic since construction; ``entries`` / ``size_bytes`` scan the
    directory, so they reflect everything ever persisted there -- including
    by other processes.
    """

    loaded: int
    saved: int
    errors: int
    entries: int
    size_bytes: int


class GoldenArtifactStore:
    """Directory of content-addressed golden-run blobs.

    One store maps digests (:func:`artifact_digest`) to versioned pickle
    blobs under ``root``.  The store is deliberately dumb -- no index, no
    locking, no eviction: the filename *is* the index, atomic rename *is*
    the locking, and artifacts are small enough (a few hundred KB each at
    the default budgets) that pruning is a deliberate ``rm`` by the user.

    Plug one into a :class:`~repro.engine.checkpoint.GoldenRunCache` (or
    just set ``EngineConfig(artifact_dir=...)``) to make the cache two-tier:
    memory first, then disk, then recording.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.loaded = 0
        self.saved = 0
        self.errors = 0

    def path_for(self, digest: str) -> Path:
        """Blob path of one artifact digest."""
        return self.root / f"{digest}{ARTIFACT_SUFFIX}"

    # ------------------------------------------------------------------ load
    def load(self, digest: str) -> CheckpointedGoldenRun | None:
        """The stored artifact for ``digest``, or None (miss / unusable blob).

        Any defect -- truncation, corruption, a foreign or future version,
        a key mismatch from a renamed file, an unreadable filesystem --
        returns None so the caller re-records; defective blobs additionally
        count into ``errors``.  A loaded artifact is always a fully
        validated :class:`CheckpointedGoldenRun`.
        """
        try:
            blob = self.path_for(digest).read_bytes()
        except OSError:
            return None  # plain miss: nothing persisted (or unreadable root)
        try:
            document = pickle.loads(blob)
            if not isinstance(document, dict):
                raise ValueError("blob is not an artifact document")
            if document.get("format") != ARTIFACT_FORMAT:
                raise ValueError(f"foreign blob format "
                                 f"{document.get('format')!r}")
            version = document.get("version")
            if version != ARTIFACT_VERSION:
                raise ValueError(f"unsupported artifact version {version!r}")
            if document.get("key") != digest:
                raise ValueError("key digest mismatch (renamed blob?)")
            payload = document["payload"]
            expected = document["payload_digest"]
            actual = hashlib.blake2b(payload, digest_size=16).digest()
            if actual != expected:
                raise ValueError("payload digest mismatch (corrupted blob)")
            artifact = pickle.loads(payload)
            if not isinstance(artifact, CheckpointedGoldenRun):
                raise ValueError(f"payload is {type(artifact).__name__}, "
                                 f"not a CheckpointedGoldenRun")
        except Exception:
            # Unpicklable garbage raises anything (UnpicklingError, EOFError,
            # AttributeError, ...); every defect degrades to a re-record.
            self.errors += 1
            return None
        self.loaded += 1
        return artifact

    # ------------------------------------------------------------------ save
    def save(self, digest: str,
             artifact: CheckpointedGoldenRun) -> Path | None:
        """Persist ``artifact`` under ``digest`` atomically.

        The blob is written to a temp file whose name embeds the writer's
        pid (plus a per-store counter), then ``os.replace``d onto the final
        path: concurrent writers racing on the same key each publish a
        complete blob and the last rename wins -- which is harmless, because
        content addressing guarantees both wrote identical artifacts.
        Filesystem failures degrade to not persisting (returns None, counts
        an error); the recording the caller already holds stays usable.
        """
        payload = pickle.dumps(artifact, protocol=4)
        document = pickle.dumps({
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "key": digest,
            "payload": payload,
            "payload_digest": hashlib.blake2b(payload,
                                              digest_size=16).digest(),
        }, protocol=4)
        path = self.path_for(digest)
        scratch = path.with_name(
            f".{path.name}.{os.getpid()}.{self.saved + self.errors}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            scratch.write_bytes(document)
            os.replace(scratch, path)
        except OSError:
            self.errors += 1
            try:
                scratch.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self.saved += 1
        return path

    # ------------------------------------------------------------ key-tuple API
    def load_key(self, key: tuple) -> CheckpointedGoldenRun | None:
        """:meth:`load` addressed by a raw golden-run identity tuple (the
        form :class:`~repro.engine.checkpoint.GoldenRunCache` keys on)."""
        return self.load(digest_of_key(key))

    def save_key(self, key: tuple,
                 artifact: CheckpointedGoldenRun) -> Path | None:
        """:meth:`save` addressed by a raw golden-run identity tuple."""
        return self.save(digest_of_key(key), artifact)

    # ------------------------------------------------------------------ stats
    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob(f"*{ARTIFACT_SUFFIX}"))
        except OSError:
            return 0

    def stats(self) -> ArtifactStoreStats:
        """Traffic counters plus an on-disk census (entries, bytes)."""
        entries = 0
        size = 0
        try:
            # sorted: glob order is filesystem-dependent, and the census must
            # not change shape between hosts sharing one store directory.
            for path in sorted(self.root.glob(f"*{ARTIFACT_SUFFIX}")):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        except OSError:
            pass
        return ArtifactStoreStats(loaded=self.loaded, saved=self.saved,
                                  errors=self.errors, entries=entries,
                                  size_bytes=size)
