"""The checkpointed parallel injection engine.

:class:`InjectionEngine` is the front door for statistical injection
campaigns.  It composes three pieces:

1. a **checkpointed golden run** (from the shared :class:`GoldenRunCache`),
   so every injected run fast-forwards from the nearest snapshot at or below
   its injection cycle instead of re-simulating from cycle 0;
2. a **resolved plan**: the suppression lottery of every protected site is
   drawn centrally, in plan order, from the campaign seed -- reproducing the
   exact random stream of the original serial campaign loop while making
   every injection independently replayable;
3. a **pluggable executor** (serial or process-pool parallel) that streams
   per-chunk aggregates back into a :class:`CampaignResult`.

With a fixed seed the engine reports outcome counts and per-site tallies
identical to the pre-engine serial campaign, independent of worker count,
chunking or checkpoint spacing (see ``tests/test_engine.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.checkpoint import (
    DEFAULT_MAX_CHECKPOINTS,
    DEFAULT_MAX_FINGERPRINTS,
    GOLDEN_RUN_CACHE,
    CheckpointedGoldenRun,
    GoldenRunCache,
    resolve_golden_cache,
)
from repro.engine.executors import (
    CampaignExecutor,
    CampaignSpec,
    ParallelExecutor,
    PlannedInjection,
    SerialExecutor,
    shard_plan,
    shard_plan_guided,
)
from repro.engine.schedule import ConvergenceSchedule
from repro.faultinjection.injector import (
    Injection,
    ProtectionProvider,
    SiteProtection,
    uniform_injection_plan,
)
from repro.faultinjection.outcomes import OutcomeCounts
from repro.isa.program import Program
from repro.microarch.core import BaseCore, DEFAULT_MAX_CYCLES
from repro.obs import Instrumentation
from repro.obs.phases import (
    COUNT_CONVERGED,
    COUNT_EVICTED,
    CYCLES_LOCKSTEP,
    CYCLES_SAVED,
    SPAN_CAMPAIGN,
    SPAN_PLAN,
    replayed_cycle_total,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (campaign imports us lazily)
    from repro.faultinjection.campaign import CampaignResult


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the injection engine.

    Attributes:
        checkpoint_interval: golden-run snapshot spacing in cycles.  ``None``
            (default) adapts the spacing to the run length under a bounded
            snapshot budget; ``0`` disables checkpointing (every injected run
            re-simulates from cycle 0 -- the pre-engine behaviour, kept as a
            benchmarking baseline).
        max_checkpoints: snapshot budget for the adaptive spacing.
        workers: worker-process count; ``1`` selects the serial executor.
        chunk_size: injections per work shard.  ``None`` derives a size that
            gives each worker a handful of chunks (load balancing without
            drowning in per-chunk pickling).
        max_cycles: golden-run watchdog.
        convergence: gate injected runs on golden-run fingerprint
            convergence -- once an injected core's full architectural state
            re-converges with the golden run at a grid cycle, the remainder
            is bit-identical by construction and is skipped.  ``False``
            restores the pre-convergence behaviour (full replay to
            termination, no fingerprint grid recorded) for benchmarking.
        convergence_interval: fingerprint-grid spacing in cycles.  ``None``
            (default) adapts a grid ~8-16x denser than the snapshot grid
            under a bounded budget; ``0`` disables the grid (same baseline
            as ``convergence=False``).
        max_fingerprints: fingerprint budget for the adaptive grid spacing.
        batch_width: lockstep wavefront width for batched replay
            (:mod:`repro.engine.batch`).  ``0`` (default) keeps every replay
            scalar; ``>= 2`` advances up to that many injected runs of one
            golden run together as vectorised wavefronts on supported cores
            (currently the in-order core; others fall back to scalar),
            composing with checkpoints and convergence gating.  Outcomes are
            bit-identical to scalar replay at any width.
        metrics: enable wall-clock phase timers and per-replay histograms
            (:mod:`repro.obs`).  Phase *cycle counters* are always collected
            -- they back the campaign telemetry -- so this flag only adds
            clock reads; outcomes are bit-identical either way.
        trace: span-based tracing of the campaign -> chunk -> replay
            lifecycle in Chrome trace-event format.  ``True`` collects the
            events on ``CampaignResult.trace_events``; a path additionally
            writes the JSON there (loadable in ``chrome://tracing`` /
            Perfetto).  ``False`` (default) skips span bookkeeping entirely.
        artifact_dir: directory of the persistent content-addressed
            golden-artifact store (:mod:`repro.engine.artifacts`).  ``None``
            (default) keeps golden runs in memory only; a path makes the
            golden cache two-tier -- memory, then disk, then recording --
            so repeated processes, pool workers and repeated campaigns load
            golden runs instead of re-recording them.  Engines pointing at
            the same directory share one in-memory cache per process.
        parallel_threshold: smallest plan size worth a process pool.  Plans
            below it run on the serial executor even when ``workers > 1``
            (pool spin-up plus payload pickling costs more than it saves on
            small campaigns -- a measured regression at 30 injections).
            ``0`` disables the fallback; an explicitly passed executor is
            always honoured as given.
        work_stealing: dispatch parallel shards pull-style over a shared
            queue with guided decreasing chunk sizes (each worker takes the
            next chunk the moment it finishes one).  ``False`` restores
            static up-front sharding, kept for benchmarking.  Either way
            chunk results merge in chunk-index order, so outcomes are
            bit-identical.
        rolling_fingerprints: serve convergence probes from
            :meth:`~repro.microarch.core.BaseCore.rolling_fingerprint` --
            the tree digest with write-invalidated component caches, costing
            O(state touched since the previous probe) instead of O(total
            state).  Rolling and full digests are byte-identical at every
            grid cycle by construction, so outcomes are bit-identical
            either way; ``False`` (default) keeps the full digest.
        fingerprint_audit_interval: with rolling fingerprints on, cross-check
            every N-th rolling probe against the freshly-computed full
            digest and fail loudly (RuntimeError) on disagreement -- the
            runtime leg of the rolling == full contract, next to the static
            ``state-coverage`` audit.  ``0`` disables the audit.
        adaptive_check_spacing: learn a per-site convergence probe schedule
            (:mod:`repro.engine.schedule`) across this engine's campaigns:
            fast-reconverging sites keep dense early probes then back off
            exponentially, historically diverging sites go sparse
            immediately.  Probe schedules never change outcomes (a skipped
            probe only delays the early-out), only the saved-cycle
            telemetry; schedule state folds through ``ChunkResult`` as
            per-site integer sums, so it is deterministic across executors.
    """

    checkpoint_interval: int | None = None
    max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS
    workers: int = 1
    chunk_size: int | None = None
    max_cycles: int = DEFAULT_MAX_CYCLES
    convergence: bool = True
    convergence_interval: int | None = None
    max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS
    batch_width: int = 0
    metrics: bool = False
    trace: bool | str | Path = False
    artifact_dir: str | Path | None = None
    parallel_threshold: int = 64
    work_stealing: bool = True
    rolling_fingerprints: bool = False
    fingerprint_audit_interval: int = 64
    adaptive_check_spacing: bool = False

    @property
    def convergence_enabled(self) -> bool:
        return self.convergence and self.convergence_interval != 0

    @property
    def trace_enabled(self) -> bool:
        return bool(self.trace)

    @property
    def trace_path(self) -> Path | None:
        """Where to write the trace JSON (None: collect in memory only)."""
        if isinstance(self.trace, (str, Path)):
            return Path(self.trace)
        return None


class InjectionEngine:
    """Checkpointed, optionally parallel injection campaigns for one
    (core, program, protection) combination."""

    def __init__(self, core: BaseCore, program: Program,
                 protection: ProtectionProvider | None = None, seed: int = 0,
                 config: EngineConfig | None = None,
                 executor: CampaignExecutor | None = None,
                 golden_cache: GoldenRunCache | None = None):
        self.core = core
        self.program = program
        self.protection = protection
        self.seed = seed
        self.config = config or EngineConfig()
        resolved = resolve_golden_cache(golden_cache, None,
                                        artifact_dir=self.config.artifact_dir)
        self._cache = resolved if resolved is not None else GOLDEN_RUN_CACHE
        # Only an executor the engine built itself may be swapped for the
        # small-plan serial fallback; an explicit one is a caller decision.
        self._config_built_executor = executor is None
        if executor is not None:
            self._executor = executor
        elif self.config.workers > 1:
            self._executor = ParallelExecutor(
                workers=self.config.workers,
                work_stealing=self.config.work_stealing)
        else:
            self._executor = SerialExecutor()
        # Per-site probe-schedule learner; lives as long as the engine so
        # repeated campaigns keep refining their schedules.
        self._schedule = (ConvergenceSchedule()
                          if self.config.adaptive_check_spacing else None)

    @property
    def golden_cache(self) -> GoldenRunCache:
        """The golden-run cache this engine resolves goldens through."""
        return self._cache

    # ------------------------------------------------------------------ golden
    def golden(self, obs: Instrumentation | None = None
               ) -> CheckpointedGoldenRun:
        """The (cached) checkpointed golden run for this core and program."""
        return self._cache.get(
            self.core, self.program,
            interval=self.config.checkpoint_interval,
            max_checkpoints=self.config.max_checkpoints,
            max_cycles=self.config.max_cycles,
            fingerprint_interval=(self.config.convergence_interval
                                  if self.config.convergence_enabled else 0),
            max_fingerprints=self.config.max_fingerprints,
            rolling=self.config.rolling_fingerprints, obs=obs)

    # ------------------------------------------------------------------ planning
    def resolve_plan(self, plan: list[Injection]) -> list[PlannedInjection]:
        """Attach protection semantics and suppression draws to a raw plan.

        Draw order matches the serial injector exactly: one ``random()`` call
        per injection, in plan order, only for sites with a non-zero
        suppression probability.
        """
        rng = random.Random(self.seed)
        resolved = []
        for injection in plan:
            protection = (self.protection.site_protection(injection.flat_index)
                          if self.protection is not None else SiteProtection())
            suppressed = (protection.suppression > 0.0
                          and rng.random() < protection.suppression)
            resolved.append(PlannedInjection(injection=injection,
                                             protection=protection,
                                             suppressed=suppressed))
        return resolved

    def _select_executor(self, plan_length: int) -> CampaignExecutor:
        """The executor for one plan: the configured one, downgraded to
        serial when a config-built pool would lose to its own spin-up cost
        (``parallel_threshold``)."""
        if (self._config_built_executor
                and isinstance(self._executor, ParallelExecutor)
                and self.config.parallel_threshold > 0
                and plan_length < self.config.parallel_threshold):
            return SerialExecutor()
        return self._executor

    def _shard(self, planned: list[PlannedInjection],
               executor: CampaignExecutor) -> list:
        """Shard a resolved plan for ``executor``.

        Work-stealing pools get guided decreasing-size chunks (unless an
        explicit ``chunk_size`` pins the static schedule); everything else
        keeps contiguous fixed-size chunks.  Both partitions preserve the
        bit-exactness contract: results merge in chunk-index order and each
        planned injection carries its pre-resolved lottery draw.
        """
        if (self.config.chunk_size is None
                and isinstance(executor, ParallelExecutor)
                and executor.work_stealing and executor.workers > 1):
            # Late chunks never shrink below a lockstep wavefront's width.
            return shard_plan_guided(planned, self.seed, executor.workers,
                                     min_chunk=max(4, self.config.batch_width))
        return shard_plan(planned, self.seed,
                          self._chunk_size(len(planned), executor))

    def _chunk_size(self, plan_length: int,
                    executor: CampaignExecutor | None = None) -> int:
        if self.config.chunk_size is not None:
            return max(1, self.config.chunk_size)
        if executor is None:
            executor = self._executor
        workers = getattr(executor, "workers", 1)
        if workers <= 1:
            return max(1, plan_length)
        # ~4 chunks per worker: enough slack to balance uneven replay costs
        # (late injections replay fewer cycles than early ones).
        return max(1, -(-plan_length // (workers * 4)))

    # ------------------------------------------------------------------ running
    def run(self, injections: int = 200,
            plan: list[Injection] | None = None) -> CampaignResult:
        """Run a campaign of ``injections`` uniform samples (or an explicit
        ``plan``) and aggregate the streamed chunk results.

        Chunk results stream back in completion order but are buffered and
        *merged in chunk-index order*, so the aggregated metrics (float
        timers included) are deterministic for any executor or scheduling.
        Outcome counts and cycle counters are integer sums -- bit-identical
        in any order -- which is what keeps the campaign's exactness
        contract independent of the instrumentation flags.
        """
        from repro.faultinjection.campaign import CampaignResult

        config = self.config
        obs = Instrumentation.configure(metrics=config.metrics,
                                        trace=config.trace_enabled)
        tracer = obs.tracer
        with tracer.span(SPAN_CAMPAIGN,
                         args={"core": self.core.name,
                               "program": self.program.name,
                               "seed": self.seed,
                               "workers": config.workers,
                               "batch_width": config.batch_width}) as span:
            checkpointed = self.golden(obs=obs)
            golden = checkpointed.golden
            if plan is None:
                plan = uniform_injection_plan(self.core.flip_flop_count,
                                              golden.cycles, injections,
                                              seed=self.seed)
            with tracer.span(SPAN_PLAN, args={"injections": len(plan)}):
                planned = self.resolve_plan(plan)
                executor = self._select_executor(len(planned))
                chunks = self._shard(planned, executor)
            schedule_plans = None
            if (self._schedule is not None and config.convergence_enabled
                    and checkpointed.fingerprint_interval > 0):
                schedule_plans = self._schedule.plans_for(
                    (p.injection.flat_index for p in planned),
                    checkpointed.fingerprint_interval)
            spec = CampaignSpec(core=self.core, program=self.program,
                                checkpointed=checkpointed,
                                convergence=config.convergence_enabled,
                                batch_width=config.batch_width,
                                metrics=config.metrics,
                                trace=config.trace_enabled,
                                rolling=config.rolling_fingerprints,
                                audit_interval=(
                                    config.fingerprint_audit_interval
                                    if config.rolling_fingerprints else 0),
                                schedule_plans=schedule_plans)
            outcomes = OutcomeCounts()
            per_site: dict[int, OutcomeCounts] = {}
            chunk_results = sorted(executor.run_chunks(spec, chunks),
                                   key=lambda result: result.index)
            for chunk_result in chunk_results:
                outcomes = outcomes.merged_with(chunk_result.outcomes)
                for flat_index, counts in chunk_result.per_site.items():
                    merged = per_site.get(flat_index)
                    per_site[flat_index] = (counts if merged is None
                                            else merged.merged_with(counts))
                obs.metrics.merge(chunk_result.metrics)
                tracer.absorb(chunk_result.trace_events)
                if self._schedule is not None:
                    self._schedule.observe(chunk_result.site_observations)
            span.note(injections=len(planned), chunks=len(chunks))
        merged = obs.metrics
        trace_path = config.trace_path
        if trace_path is not None:
            tracer.save(trace_path)
        return CampaignResult(core_name=self.core.name,
                              program_name=self.program.name,
                              golden=golden, outcomes=outcomes,
                              per_site=per_site,
                              replayed_cycles=replayed_cycle_total(merged),
                              converged_count=merged.value(COUNT_CONVERGED),
                              saved_cycles=merged.value(CYCLES_SAVED),
                              evicted_count=merged.value(COUNT_EVICTED),
                              lockstep_cycles=merged.value(CYCLES_LOCKSTEP),
                              metrics=merged.to_dict(),
                              trace_events=(tracer.events
                                            if tracer.enabled else None))


def run_suite_campaign(core: BaseCore, workloads,
                       injections_per_workload: int = 100,
                       protection: ProtectionProvider | None = None,
                       seed: int = 0, config: EngineConfig | None = None,
                       golden_cache: GoldenRunCache | None = None,
                       max_cache_entries: int | None = None):
    """Run engine-backed campaigns over workloads and build a vulnerability map.

    Returns ``(vulnerability_map, [CampaignResult, ...])``.  Workload ``i``
    runs with seed ``seed + i``, matching the historical suite runner, and
    all campaigns share one golden-run cache.  ``max_cache_entries`` sizes a
    fresh private cache to the suite (one golden run per workload; the
    default process-wide cache holds 8 entries and thrashes on wider
    suites); it cannot be combined with an explicit ``golden_cache``.  With
    ``config.artifact_dir`` set, the suite's cache is backed by the
    persistent golden-artifact store, so repeated suite runs load golden
    runs instead of re-recording them.
    """
    from repro.faultinjection.vulnerability import VulnerabilityMap

    golden_cache = resolve_golden_cache(
        golden_cache, max_cache_entries,
        artifact_dir=config.artifact_dir if config is not None else None)
    vulnerability = VulnerabilityMap(core.name, core.flip_flop_count)
    results = []
    for offset, workload in enumerate(workloads):
        engine = InjectionEngine(core, workload.program(),
                                 protection=protection, seed=seed + offset,
                                 config=config, golden_cache=golden_cache)
        result = engine.run(injections=injections_per_workload)
        result.contribute_to(vulnerability)
        results.append(result)
    return vulnerability, results
