"""Batched lockstep replay: streaming vectorised injection wavefronts.

The scalar replay path costs ~20 microseconds of Python dispatch per
simulated cycle, and the process-pool executor cannot help because the cost
sits *inside* one replay, not across them.  This module attacks the
per-cycle cost directly: injected replays of the same golden run advance
together as one struct-of-arrays *wavefront*, so each interpreted pipeline
step pays its Python overhead once for the whole batch while per-lane data
moves are numpy column operations.

The key observation making lockstep exact rather than approximate: until an
injected bit flip propagates into control flow, an injected run executes the
*same instruction stream* as the golden run -- only operand/result *values*
differ.  The wavefront therefore splits the in-order core's flip-flop
structures into two planes:

* **control plane** -- pc/validity/opcode/destination/trap/address fields
  that decide *what the pipeline does*.  These are required to stay uniform
  across the wavefront and are stored once as plain scalars (lane 0, the
  uninjected reference lane, defines them; it reproduces the golden run
  bit-for-bit by construction).
* **lane plane** -- operand/result value latches plus every hint-only
  structure (branch predictor, status register, cache/IRQ bookkeeping).
  These live as ``(lanes,)`` numpy columns in a
  :class:`~repro.microarch.state.BatchedLatchState` and may diverge freely:
  they never feed control decisions, only register writes, stores and
  program output -- all of which are vectorised per lane.

One wavefront *streams* over the whole chunk: it sweeps the golden timeline
once, and each planned injection joins a free lane slot when the sweep
reaches its injection cycle (a joining lane is bit-identical to the
reference lane by construction).  Idle gaps with no occupied lanes teleport
forward via the golden snapshot grid.  A lane leaves the wavefront by:

* **Convergence retirement** (architectural): at the fingerprint-grid
  cadence, a lane whose architectural state -- value latches, registers,
  memory, emitted output -- is bit-identical to the reference lane is
  retired with a synthesized golden-copy result.  Hint-only structures
  (branch predictor, IRQ/cache counters, status shadow) are deliberately
  excluded from the check: the in-order core never reads them into
  behaviour, so architectural equality alone implies the remainder of the
  run emits golden output.  The scalar path classifies such runs VANISHED
  (by full replay or full-state convergence); retirement returns the same
  classification without the replay tail.
* **Divergence demotion to a tandem**: the moment a lane's control would
  differ from the reference -- a flip landing in a control-plane structure,
  a divergent branch decision/target, memory address, or execute-trap
  predicate -- the lane is extracted in its pristine start-of-cycle state
  and continues on a pooled scalar core *in tandem* with the wavefront.
  Control divergence is usually transient (a corrupted instruction drains
  within a few cycles); once the tandem's control plane re-equals the
  reference it **rejoins** the wavefront as a vectorised lane, carrying its
  divergent data values.  Tandems that terminate, or stay diverged past a
  bounded window, finish on the ordinary scalar path (with the convergence
  gate), exactly as a plain scalar replay of that injection would.

The wavefront stepper mirrors :meth:`InOrderCore._step_cycle` stage for
stage and is therefore specific to the in-order pipeline.  Other cores --
the out-of-order model in particular, whose dynamic scheduling makes
"uniform control" a far weaker invariant -- transparently fall back to the
scalar path: :func:`batched_replay_supported` is the seam, and a batched
campaign on an unsupported core is simply a scalar campaign.

Injections whose protection *detects* without suppression also take the
scalar path (they raise detection events / recovery stalls rather than flip
state), as do campaigns whose golden run hung, detected or recovered (the
scalar gate refuses those too).  Everything else batches, including
suppressed injections (no flip: the lane joins and retires at the first
eligible grid cycle, exactly like the scalar no-op replay converges).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.engine.checkpoint import CheckpointedGoldenRun
from repro.engine.executors import (
    ChunkResult,
    ChunkSpec,
    CampaignSpec,
    PlannedInjection,
    Replay,
    _ConvergedEarly,
    _convergence_hook,
    fold_scalar_replay,
    replay_planned_injection,
)
from repro.faultinjection.injector import injection_watchdog
from repro.faultinjection.outcomes import classify_outcome
from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instructions import LUI_SHIFT, Opcode, OPCODE_INFO
from repro.isa.program import Program, WORD_BYTES
from repro.microarch.core import BaseCore, CoreSnapshot
from repro.microarch.events import RunResult, TerminationReason, TrapKind
from repro.microarch.inorder import _TRAP_CODES, _TRAP_FROM_CODE, InOrderCore
from repro.microarch.memory import BatchedWordStore, MemoryFault
from repro.microarch.state import BatchedLatchState
from repro.obs import Instrumentation
from repro.obs.metrics import NULL_METRICS
from repro.obs.phases import (
    COUNT_CONVERGED,
    COUNT_EVICTED,
    COUNT_REPLAYS,
    CYCLES_FALLBACK,
    CYCLES_FASTFORWARD,
    CYCLES_LOCKSTEP,
    CYCLES_SAVED,
    CYCLES_TANDEM,
    CYCLES_WAVEFRONT_SHARED,
    HISTOGRAM_REPLAY_CYCLES,
    PHASE_FALLBACK,
    PHASE_LOCKSTEP,
    PHASE_SCALAR_REPLAY,
    PHASE_TANDEM,
    SPAN_CHUNK,
)
from repro.obs.trace import now_us

_WORD = 0xFFFFFFFF

_MIN_WAVEFRONT_LANES = 2
"""Smallest batchable population worth building a wavefront for."""

_TANDEM_WINDOW = 64
"""Cycles a control-diverged tandem may chase the wavefront before it is
evicted to a plain scalar finish.  Transient control corruption (a flipped
instruction word, operand, or address) drains from the 6-stage pipeline
within a handful of cycles; runs still diverged after this window have
genuinely forked control flow and rarely return."""

_BRANCH_OPCODES = frozenset((Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                             Opcode.BLTU, Opcode.BGEU))

_DATA_COLUMNS = frozenset((
    "e.rs1val", "e.rs2val",      # operands read at regaccess
    "m.result", "m.storeval",    # ALU result / store payload
    "x.result", "x.outval",      # post-memory result / OUT payload
    "w.result", "w.outval",      # committing result / OUT payload
))
"""Architectural value latches that may differ per lane under uniform control."""

_DELTA_COLUMNS = ("irq.pending", "ic.ctrl.state", "dc.ctrl.state")
"""Hint counters the pipeline bumps by a lane-uniform increment.  The
wavefront stores them offset by a scalar running delta instead of touching
the columns every cycle; true values materialise only at lane extraction."""

# Enum __call__ and mapping-by-member lookups cost ~1us each and sit on the
# per-cycle path; these precomputed int-keyed tables replace them.
_OPCODE_BY_INT = {int(op): op for op in Opcode}
_INFO_BY_INT = {int(op): OPCODE_INFO[op] for op in Opcode}
_HALT_INT = int(Opcode.HALT)

_U1 = np.uint64(1)
_U2 = np.uint64(2)
_U3 = np.uint64(3)

_MISSING = object()


def batched_replay_supported(core: BaseCore) -> bool:
    """True when ``core`` has a lockstep wavefront stepper.

    The stepper mirrors the in-order pipeline exactly, so only the exact
    :class:`InOrderCore` type qualifies (a subclass may override stage
    behaviour the mirror would not reproduce).  Everything else -- the
    out-of-order core in particular -- replays on the scalar path.
    """
    return type(core) is InOrderCore


def _golden_batchable(golden: RunResult) -> bool:
    """Golden runs the wavefront can reproduce as its reference lane.

    Mirrors the scalar convergence gate's exclusions (a hung golden run's
    injected watchdog differs) plus detections/recovery, which the lockstep
    reference lane does not model -- such campaigns fall back to scalar.
    """
    return (golden.reason is not TerminationReason.HANG
            and not golden.detections
            and golden.recovery_cycles == 0
            and golden.cycles > 0)


@dataclass
class _LaneRecord:
    """Lifecycle bookkeeping for one planned injection in the wavefront.

    The three cycle tallies partition a finished record's simulated cycles
    by phase -- lockstep lanes, tandem co-stepping, scalar fallback -- so
    the chunk's phase counters reconcile exactly with ``simulated_cycles``
    (their sum).
    """

    planned: PlannedInjection
    slot: int = -1
    resumed_from: int = 0
    segment_start: int = 0
    lockstep_cycles: int = 0
    tandem_cycles: int = 0
    scalar_cycles: int = 0
    evicted: bool = False
    replay: Replay | None = None

    @property
    def simulated_cycles(self) -> int:
        return self.lockstep_cycles + self.tandem_cycles + self.scalar_cycles


class _Tandem:
    """A control-diverged replay co-stepping on a pooled scalar core."""

    __slots__ = ("core", "record", "deadline", "started")

    def __init__(self, core: BaseCore, record: _LaneRecord, deadline: int,
                 started: float = 0.0):
        self.core = core
        self.record = record
        self.deadline = deadline
        self.started = started


class _CorePool:
    """Reusable scalar cores for tandem co-simulation (one per live tandem)."""

    def __init__(self, template: BaseCore):
        self._template = template
        self._idle: list[BaseCore] = []

    def acquire(self) -> BaseCore:
        if self._idle:
            return self._idle.pop()
        return type(self._template)(name=self._template.name)

    def release(self, core: BaseCore) -> None:
        self._idle.append(core)


@dataclass
class _ExecOutcome:
    """Vectorised execute-stage result under uniform (reference) control.

    ``value``/``store_col``/``out_col`` may be per-lane arrays; everything
    control-bearing (``taken``, ``target``, ``mem_addr``, ``trap``) is a
    scalar -- lanes that would disagree with the reference lane were demoted
    to tandems during the pre-pass that computed this outcome.
    """

    illegal: bool = False
    value: object = 0
    taken: bool = False
    target: int = 0
    mem_addr: int | None = None
    store_col: object = None
    out_col: object = None
    trap: bool = False
    trapkind: int = 0
    is_branch: bool = False


class _StreamingWavefront:
    """One streaming lockstep sweep over a chunk's batchable injections.

    Lane 0 is the uninjected reference lane; slots ``1..width`` are recycled
    across injections as lanes join, retire, and demote.  Control-plane
    latches are kept as plain scalars in ``self._ctrl`` (the lockstep
    invariant makes them uniform); the matching columns of the latch matrix
    are *stale* and never read -- lane extraction recomposes full latch
    tuples from the scalar control plane plus the lane's data/hint columns.
    """

    def __init__(self, core: BaseCore, program: Program,
                 checkpointed: CheckpointedGoldenRun, convergence: bool,
                 width: int, pool: _CorePool,
                 obs: Instrumentation | None = None, rolling: bool = False,
                 audit_interval: int = 0, schedule_plans=None):
        self._obs = Instrumentation.off() if obs is None else obs
        self._tracing = self._obs.tracer.enabled
        self._program = program
        self._checkpointed = checkpointed
        self._golden = checkpointed.golden
        self._core_name = core.name
        self._registry = core.registry
        self._pool = pool
        self._watchdog = injection_watchdog(self._golden)
        self.lanes = width + 1
        structures = self._registry.structures
        self._structures = structures
        self._is_lane_local = {
            s.name: (not s.architectural) or s.name in _DATA_COLUMNS
            for s in structures}
        self._cmask = {s.name: (1 << s.width) - 1 for s in structures
                       if not self._is_lane_local[s.name]}
        self._ctrl_positions = [
            (i, s.name) for i, s in enumerate(structures)
            if not self._is_lane_local[s.name]]
        self._lane_positions = [
            i for i, s in enumerate(structures) if self._is_lane_local[s.name]]
        self._data_columns = np.array(
            [i for i, s in enumerate(structures) if s.name in _DATA_COLUMNS],
            dtype=np.intp)
        index = {s.name: i for i, s in enumerate(structures)}
        self._delta_sites = {
            name: (index[name], (1 << structures[index[name]].width) - 1)
            for name in _DELTA_COLUMNS}
        self._fingerprints = checkpointed.fingerprints
        self._fp_interval = checkpointed.fingerprint_interval
        self._rolling = rolling
        self._audit_interval = audit_interval
        self._schedule_plans = schedule_plans or {}
        self._gate = (convergence and self._fp_interval > 0
                      and bool(self._fingerprints))
        self._convergence = convergence
        self._predictor_entries = np.uint64(core._predictor._entries)
        self._history_mask = np.uint64(
            (1 << structures[index["f.bp.history"]].width) - 1)
        self._fetch_cache: dict[int, int | None] = {}
        self._decode_cache: dict[int, tuple | None] = {}
        self.shared_cycles = 0
        self._tandems: list[_Tandem] = []
        self._base_snapshot: CoreSnapshot | None = None

    # ------------------------------------------------------------------ reference state
    def _load_reference(self, base: CoreSnapshot) -> None:
        """(Re)initialise the whole wavefront from one golden snapshot.

        Used for the initial base and for teleporting over idle gaps; legal
        only while no lane slot is occupied and no tandem is live.
        """
        if base.pending_recovery or base.detections or base.recovery_cycles:
            raise ValueError("wavefronts require a clean golden prefix")
        lanes = self.lanes
        self._ctrl = {name: base.latches[position]
                      for position, name in self._ctrl_positions}
        self._latches = BatchedLatchState.from_serialized(
            self._registry, base.latches, lanes)
        self._view = {name: self._latches.col(name) for name in (
            "e.rs1val", "e.rs2val", "m.result", "m.storeval", "x.result",
            "x.outval", "w.result", "w.outval", "w.s.icc", "x.icc",
            "f.bp.table", "f.bp.history")}
        self.regs = np.zeros((lanes, len(base.micro["registers"])),
                             dtype=np.uint64)
        self.regs[:] = np.array(base.micro["registers"], dtype=np.uint64)
        self.mem = BatchedWordStore(base.micro["memory"], lanes)
        self.redirect_target = int(base.micro["redirect_target"])
        self.cycle = base.cycle
        self.retired = base.retired
        self.reason: TerminationReason | None = None
        self.trap: TrapKind | None = None
        self._output_prefix = list(base.output)
        self._emitted: list[np.ndarray] = []
        self.output_ok = np.ones(lanes, dtype=bool)
        self._occupied = np.zeros(lanes, dtype=bool)
        self._occupied_count = 0
        self._free_slots = list(range(1, lanes))
        self._slot_records: list[_LaneRecord | None] = [None] * lanes
        self._inj_cycles = np.full(lanes, np.iinfo(np.int64).max,
                                   dtype=np.int64)
        self._deltas = {name: 0 for name in _DELTA_COLUMNS}

    def _base_at(self, cycle: int) -> CoreSnapshot:
        """Golden snapshot at or before ``cycle`` (cycle-0 reset if none)."""
        snapshot = self._checkpointed.nearest(cycle)
        if snapshot is not None:
            return snapshot
        if self._base_snapshot is None:
            core = self._pool.acquire()
            core.reset(self._program)
            self._base_snapshot = core.snapshot()
            self._pool.release(core)
        return self._base_snapshot

    # ------------------------------------------------------------------ sweep driver
    def sweep(self, records: list[_LaneRecord]
              ) -> tuple[list[_LaneRecord], list[_LaneRecord]]:
        """Stream ``records`` (sorted by injection cycle) through one sweep.

        Returns ``(finished, deferred)``: finished records carry a
        :class:`Replay`; deferred ones found no free lane slot at their
        injection cycle and need another pass (or the scalar path).
        """
        finished: list[_LaneRecord] = []
        deferred: list[_LaneRecord] = []
        if not records:
            return finished, deferred
        self._load_reference(self._base_at(records[0].planned.injection.cycle))
        golden_cycles = self._golden.cycles
        index = 0
        total = len(records)
        while self.reason is None:
            cycle = self.cycle
            if self._occupied_count == 0 and not self._tandems:
                if index >= total:
                    break  # pass exhausted without reaching golden termination
                target = records[index].planned.injection.cycle
                if target > cycle:
                    snapshot = self._checkpointed.nearest(target)
                    if snapshot is not None and snapshot.cycle > cycle:
                        self._load_reference(snapshot)
                        cycle = self.cycle
            if cycle > golden_cycles:
                raise RuntimeError(
                    "batched lockstep replay desynchronised: reference lane "
                    f"passed the golden termination cycle {golden_cycles}")
            while (index < total
                   and records[index].planned.injection.cycle == cycle):
                self._admit(records[index], deferred)
                index += 1
            if self._tandems:
                self._service_tandems(finished)
            if (self._gate and self._occupied_count
                    and cycle % self._fp_interval == 0):
                self._retire_converged(cycle, finished)
            self._advance_one_cycle()
            self.shared_cycles += 1
            if self._tandems:
                self._step_tandems(finished)
        if self.reason is not None:
            if (self.cycle != golden_cycles
                    or self.reason is not self._golden.reason
                    or self.trap is not self._golden.trap
                    or self.retired != self._golden.instructions_retired):
                raise RuntimeError(
                    "batched lockstep replay reference lane diverged from "
                    f"the golden run (cycle {self.cycle} vs {golden_cycles}, "
                    f"reason {self.reason} vs {self._golden.reason})")
            for lane in np.nonzero(self._occupied)[0]:
                self._dispose_survivor(int(lane), finished)
            for tandem in list(self._tandems):
                self._hard_evict(tandem, finished)
        deferred.extend(records[index:])
        return finished, deferred

    # ------------------------------------------------------------------ lane lifecycle
    def _admit(self, record: _LaneRecord, deferred: list[_LaneRecord]) -> None:
        planned = record.planned
        record.resumed_from = self.cycle
        record.segment_start = self.cycle
        if planned.suppressed:
            # The hardened cell absorbed the strike: a no-op lane.
            if not self._join_lane(record, flat_index=None):
                deferred.append(record)
            return
        site = self._registry.site(planned.injection.flat_index)
        if self._is_lane_local[site.structure.name]:
            if not self._join_lane(record, planned.injection.flat_index):
                deferred.append(record)
        else:
            # Control-plane flip: the instruction stream diverges from the
            # wavefront at the instant of injection.  Chase it in tandem.
            snapshot = self._lane_snapshot(0)
            flipped = list(snapshot.latches)
            flipped[self._latches.position(site.structure.name)] ^= 1 << site.bit
            snapshot.latches = tuple(flipped)
            self._spawn_tandem(record, snapshot)

    def _join_lane(self, record: _LaneRecord, flat_index: int | None) -> bool:
        """Seat ``record`` in a free slot as a copy of the reference lane."""
        if not self._free_slots:
            return False
        slot = self._free_slots.pop()
        self._latches.array[slot] = self._latches.array[0]
        self.regs[slot] = self.regs[0]
        self.mem.reset_lane(slot)
        for values in self._emitted:
            values[slot] = values[0]
        self.output_ok[slot] = True
        if flat_index is not None:
            self._flip_lane_local(slot, flat_index)
        self._occupied[slot] = True
        self._occupied_count += 1
        self._slot_records[slot] = record
        self._inj_cycles[slot] = record.planned.injection.cycle
        record.slot = slot
        record.segment_start = self.cycle
        return True

    def _flip_lane_local(self, slot: int, flat_index: int) -> None:
        site = self._registry.site(flat_index)
        name = site.structure.name
        delta_site = self._delta_sites.get(name)
        if delta_site is None:
            self._latches.flip_flat(slot, flat_index)
            return
        # Delta-offset column: flip the *materialised* value, store it back
        # in offset form.
        position, mask = delta_site
        delta = self._deltas[name]
        true_value = (int(self._latches.array[slot, position]) + delta) & mask
        true_value ^= 1 << site.bit
        self._latches.array[slot, position] = np.uint64(
            (true_value - delta) & mask)

    def _release_slot(self, slot: int) -> None:
        self._occupied[slot] = False
        self._occupied_count -= 1
        self._slot_records[slot] = None
        self._inj_cycles[slot] = np.iinfo(np.int64).max
        self._free_slots.append(slot)

    def _spawn_tandem(self, record: _LaneRecord,
                      snapshot: CoreSnapshot) -> None:
        core = self._pool.acquire()
        core.restore(self._program, snapshot)
        self._tandems.append(
            _Tandem(core, record, deadline=self.cycle + _TANDEM_WINDOW,
                    started=now_us() if self._tracing else 0.0))

    def _finish_tandem_span(self, tandem: _Tandem, disposition: str) -> None:
        """Emit the ``tandem.window`` span (spawn -> rejoin/finish/evict)."""
        if not self._tracing:
            return
        self._obs.tracer.complete(
            PHASE_TANDEM, start_us=tandem.started,
            dur_us=now_us() - tandem.started,
            args={"site": tandem.record.planned.injection.flat_index,
                  "disposition": disposition})

    def _demote_divergent(self, values: np.ndarray) -> None:
        """Demote occupied lanes whose ``values`` entry differs from lane 0's.

        Called from the execute pre-pass *before* any stage mutates state,
        so the extracted snapshot is the lane's pristine start-of-cycle
        state -- exactly what a scalar replay would hold here.
        """
        mask = values != values[0]
        mask &= self._occupied
        if mask.any():
            for lane in np.nonzero(mask)[0]:
                lane = int(lane)
                record = self._slot_records[lane]
                record.lockstep_cycles += self.cycle - record.segment_start
                snapshot = self._lane_snapshot(lane)
                self._release_slot(lane)
                self._spawn_tandem(record, snapshot)

    def _lane_snapshot(self, lane: int) -> CoreSnapshot:
        row = self._latches.array[lane]
        ctrl = self._ctrl
        lane_local = self._is_lane_local
        latches = [
            int(row[i]) if lane_local[s.name] else ctrl[s.name]
            for i, s in enumerate(self._structures)]
        for name, (position, mask) in self._delta_sites.items():
            latches[position] = (latches[position] + self._deltas[name]) & mask
        return CoreSnapshot(
            core_name=self._core_name,
            cycle=self.cycle,
            retired=self.retired,
            output=self._lane_output(lane),
            detections=[],
            recovery_cycles=0,
            pending_recovery=0,
            latches=tuple(latches),
            micro={
                "registers": [int(v) for v in self.regs[lane]],
                "memory": self.mem.lane_words(lane),
                "redirect_target": self.redirect_target,
            })

    def _lane_output(self, lane: int) -> list[int]:
        return self._output_prefix + [int(values[lane])
                                      for values in self._emitted]

    def _dispose_survivor(self, lane: int, finished: list[_LaneRecord]) -> None:
        record = self._slot_records[lane]
        record.lockstep_cycles += self.cycle - record.segment_start
        self._release_slot(lane)
        result = RunResult(
            program_name=self._golden.program_name,
            core_name=self._golden.core_name,
            reason=self.reason,
            trap=self.trap,
            cycles=self.cycle,
            instructions_retired=self.retired,
            output=self._lane_output(lane),
            detections=[],
            recovery_cycles=0)
        record.replay = Replay(
            result=result, outcome=classify_outcome(self._golden, result),
            resumed_from=record.resumed_from,
            simulated_cycles=record.simulated_cycles)
        finished.append(record)

    def _retire_converged(self, cycle: int,
                          finished: list[_LaneRecord]) -> None:
        """Retire lanes whose architectural state re-converged with lane 0.

        Hint-only columns are excluded on purpose: the in-order core never
        reads them (the predictor read is a discarded prediction), so a lane
        that matches architecturally emits golden output from here on --
        VANISHED, exactly what the scalar path reports for it.
        """
        eligible = self._occupied & self.output_ok & (self._inj_cycles < cycle)
        if not eligible.any():
            return
        eligible &= self._latches.rows_equal(columns=self._data_columns)
        eligible &= (self.regs == self.regs[0]).all(axis=1)
        eligible &= self.mem.lanes_match_reference()
        if not eligible.any():
            return
        golden = self._golden
        for lane in np.nonzero(eligible)[0]:
            lane = int(lane)
            record = self._slot_records[lane]
            record.lockstep_cycles += cycle - record.segment_start
            self._release_slot(lane)
            synthesized = replace(golden, output=list(golden.output),
                                  detections=list(golden.detections))
            record.replay = Replay(
                result=synthesized,
                outcome=classify_outcome(golden, synthesized),
                resumed_from=record.resumed_from,
                simulated_cycles=record.simulated_cycles,
                converged_at=cycle)
            finished.append(record)

    # ------------------------------------------------------------------ tandems
    def _tandem_rejoinable(self, tandem: _Tandem) -> bool:
        core = tandem.core
        if (core._retired != self.retired
                or core._redirect_target != self.redirect_target
                or core._pending_recovery or core._detections
                or core._recovery_cycles
                or len(core._output) != (len(self._output_prefix)
                                         + len(self._emitted))):
            return False
        data = core.latches._data
        ctrl = self._ctrl
        for position, name in self._ctrl_positions:
            if data[position] != ctrl[name]:
                return False
        return True

    def _service_tandems(self, finished: list[_LaneRecord]) -> None:
        cycle = self.cycle
        for tandem in list(self._tandems):
            if self._free_slots and self._tandem_rejoinable(tandem):
                self._rejoin(tandem)
            elif cycle >= tandem.deadline:
                self._tandems.remove(tandem)
                self._hard_evict(tandem, finished)

    def _rejoin(self, tandem: _Tandem) -> None:
        """Seat a re-converged tandem back into a vectorised lane slot.

        Control equality (plus retired count, redirect target, and output
        length) implies the tandem will execute the same instruction stream
        as the reference from here on; its divergent *data* -- registers,
        memory, value latches, emitted output -- rides along vectorised and
        is re-checked by the pre-pass every cycle like any other lane's.
        """
        self._tandems.remove(tandem)
        self._finish_tandem_span(tandem, disposition="rejoined")
        record = tandem.record
        core = tandem.core
        slot = self._free_slots.pop()
        data = core.latches._data
        row = self._latches.array[slot]
        for position in self._lane_positions:
            row[position] = data[position]
        for name, (position, mask) in self._delta_sites.items():
            row[position] = np.uint64((data[position] - self._deltas[name])
                                      & mask)
        micro = core._snapshot_microarchitecture()
        self.regs[slot] = np.array(micro["registers"], dtype=np.uint64)
        self.mem.set_lane_words(slot, micro["memory"])
        output = core._output
        base_length = len(self._output_prefix)
        ok = True
        for offset, values in enumerate(self._emitted):
            values[slot] = output[base_length + offset]
            ok = ok and values[slot] == values[0]
        self.output_ok[slot] = ok
        self._occupied[slot] = True
        self._occupied_count += 1
        self._slot_records[slot] = record
        self._inj_cycles[slot] = record.planned.injection.cycle
        record.slot = slot
        record.segment_start = self.cycle
        self._pool.release(core)

    def _step_tandems(self, finished: list[_LaneRecord]) -> None:
        for tandem in list(self._tandems):
            tandem.record.tandem_cycles += 1
            if not tandem.core.step():
                self._tandems.remove(tandem)
                self._finish_tandem_terminated(tandem, finished)

    def _finish_tandem_terminated(self, tandem: _Tandem,
                                  finished: list[_LaneRecord]) -> None:
        core = tandem.core
        result = RunResult(
            program_name=self._golden.program_name,
            core_name=core.name,
            reason=core._termination,
            trap=core._trap,
            cycles=core.cycle,
            instructions_retired=core._retired,
            output=list(core._output),
            detections=list(core._detections),
            recovery_cycles=core._recovery_cycles)
        record = tandem.record
        record.evicted = True
        record.replay = Replay(
            result=result, outcome=classify_outcome(self._golden, result),
            resumed_from=record.resumed_from,
            simulated_cycles=record.simulated_cycles)
        finished.append(record)
        self._finish_tandem_span(tandem, disposition="terminated")
        self._pool.release(core)

    def _hard_evict(self, tandem: _Tandem,
                    finished: list[_LaneRecord]) -> None:
        """Finish a still-diverged tandem on the plain scalar path.

        The flip is long applied, so the resume hook carries only the
        convergence gate -- the same gate a scalar replay of this injection
        runs under.  (Grid cycles inside the tandem window need no check: a
        full-state fingerprint match implies control-plane equality, which
        would have rejoined the lane instead.)
        """
        core = tandem.core
        record = tandem.record
        record.evicted = True
        self._finish_tandem_span(tandem, disposition="evicted")
        golden = self._golden
        start_cycle = core.cycle
        obs = self._obs
        hook = None
        if self._gate:
            probe_metrics = obs.metrics if obs.detailed else NULL_METRICS
            hook = _convergence_hook(
                _noop_hook, record.planned.injection.cycle,
                self._checkpointed, metrics=probe_metrics,
                rolling=self._rolling, audit_interval=self._audit_interval,
                plan=self._schedule_plans.get(
                    record.planned.injection.flat_index))
        try:
            with obs.tracer.span(
                    PHASE_FALLBACK,
                    args={"site": record.planned.injection.flat_index,
                          "from_cycle": start_cycle}):
                with obs.metrics.timer(PHASE_FALLBACK):
                    injected = core._run_loop(self._watchdog, hook)
        except _ConvergedEarly as converged:
            synthesized = replace(golden, output=list(golden.output),
                                  detections=list(golden.detections))
            record.scalar_cycles += converged.cycle - start_cycle
            record.replay = Replay(
                result=synthesized,
                outcome=classify_outcome(golden, synthesized),
                resumed_from=record.resumed_from,
                simulated_cycles=record.simulated_cycles,
                converged_at=converged.cycle)
        else:
            record.scalar_cycles += injected.cycles - start_cycle
            record.replay = Replay(
                result=injected,
                outcome=classify_outcome(golden, injected),
                resumed_from=record.resumed_from,
                simulated_cycles=record.simulated_cycles)
        finished.append(record)
        self._pool.release(core)

    # ------------------------------------------------------------------ per-cycle step
    def _advance_one_cycle(self) -> None:
        execute = self._execute_prepass()
        self._commit_writeback()
        if self.reason is not None:
            self.cycle += 1
            return
        self._stage_exception_to_writeback()
        self._stage_memory_to_exception()
        redirect = self._stage_execute_to_memory(execute)
        stalled = self._stage_regaccess_to_execute(redirect)
        self._stage_decode_to_regaccess(redirect, stalled)
        self._stage_fetch_to_decode(redirect, stalled)
        self._deltas["irq.pending"] += 1
        self.cycle += 1

    def _emit(self, values: np.ndarray) -> None:
        values = values.copy()
        self._emitted.append(values)
        self.output_ok &= values == values[0]

    def _terminate(self, reason: TerminationReason,
                   trap: TrapKind | None) -> None:
        if self.reason is None:
            self.reason = reason
            self.trap = trap

    def _cset(self, name: str, value: int) -> None:
        self._ctrl[name] = value & self._cmask[name]

    # ------------------------------------------------------------------ pipeline mirror
    # Each stage below mirrors the same-named InOrderCore stage exactly, with
    # control reads/writes on the scalar control plane and value moves as
    # whole-column numpy operations.

    def _commit_writeback(self) -> None:
        c = self._ctrl
        if not c["w.valid"]:
            return
        if c["w.trap"]:
            kind = _TRAP_FROM_CODE.get(c["w.trapkind"],
                                       TrapKind.ILLEGAL_INSTRUCTION)
            reason = (TerminationReason.DETECTED
                      if kind is TrapKind.SOFTWARE_ASSERTION
                      else TerminationReason.TRAP)
            self._terminate(reason, kind)
            c["w.valid"] = 0
            return
        if c["w.wen"]:
            rd = c["w.rd"] & 0x1F
            if rd != 0:
                self.regs[:, rd] = self._view["w.result"]
        if c["w.outpending"]:
            self._emit(self._view["w.outval"])
        self.retired += 1
        if c["w.op"] == _HALT_INT:
            self._terminate(TerminationReason.HALTED, None)
        c["w.valid"] = 0
        c["w.wen"] = 0
        c["w.outpending"] = 0

    def _stage_exception_to_writeback(self) -> None:
        c = self._ctrl
        v = self._view
        if not c["x.valid"]:
            c["w.valid"] = 0
            c["w.wen"] = 0
            c["w.outpending"] = 0
            return
        c["w.op"] = c["x.op"]
        c["w.rd"] = c["x.rd"]
        v["w.result"][:] = v["x.result"]
        c["w.trap"] = c["x.trap"]
        c["w.trapkind"] = c["x.trapkind"]
        v["w.outval"][:] = v["x.outval"]
        c["w.outpending"] = c["x.outpending"]
        c["w.valid"] = 1
        wen = 0
        if not c["x.trap"]:
            info = _INFO_BY_INT.get(c["x.op"])
            if info is not None:
                wen = 1 if (info.writes_rd and c["x.rd"] != 0) else 0
        c["w.wen"] = wen
        v["w.s.icc"][:] = v["x.icc"]
        c["x.valid"] = 0

    def _stage_memory_to_exception(self) -> None:
        c = self._ctrl
        v = self._view
        if not c["m.valid"]:
            c["x.valid"] = 0
            c["x.outpending"] = 0
            return
        c["x.op"] = c["m.op"]
        c["x.rd"] = c["m.rd"]
        c["x.trap"] = c["m.trap"]
        c["x.trapkind"] = c["m.trapkind"]
        c["x.valid"] = 1
        c["x.outpending"] = 0
        result = v["m.result"]
        if not c["m.trap"]:
            opcode = _OPCODE_BY_INT.get(c["m.op"])
            address = c["m.addr"]
            try:
                if opcode is Opcode.LW:
                    result = self.mem.load_word(address)
                elif opcode is Opcode.LB:
                    result = self.mem.load_byte(address)
                elif opcode is Opcode.SW:
                    self.mem.store_word(address, v["m.storeval"])
                elif opcode is Opcode.SB:
                    self.mem.store_byte(address, v["m.storeval"])
                elif opcode is Opcode.OUT:
                    v["x.outval"][:] = v["m.storeval"]
                    c["x.outpending"] = 1
            except MemoryFault:
                c["x.trap"] = 1
                c["x.trapkind"] = _TRAP_CODES[TrapKind.MEMORY_FAULT]
            self._deltas["dc.ctrl.state"] += 1
        v["x.result"][:] = result
        c["m.valid"] = 0

    def _execute_prepass(self) -> _ExecOutcome | None:
        """Compute the execute stage for the whole wavefront *before* any
        mutation, demoting lanes whose control-bearing outputs (branch
        decision/target, memory address, trap predicate) diverge from the
        reference lane.

        Running ahead of the older stages is exact: they never touch the
        ``e.*`` latches this reads, and a demoted lane's snapshot must be
        its start-of-cycle state anyway.
        """
        c = self._ctrl
        if not c["e.valid"] or c["e.trap"]:
            return None
        opcode = _OPCODE_BY_INT.get(c["e.op"])
        if opcode is None:
            return _ExecOutcome(illegal=True)
        pc = c["e.pc"]
        imm = c["e.imm"]
        if imm & 0x4000:  # sign-extend the 15-bit immediate
            imm -= 0x8000
        a = self._view["e.rs1val"]
        b = self._view["e.rs2val"]
        ai = a.astype(np.int64)
        bi = b.astype(np.int64)
        out = _ExecOutcome()

        if opcode is Opcode.ADD:
            out.value = (ai + bi) & _WORD
        elif opcode is Opcode.SUB:
            out.value = (ai - bi) & _WORD
        elif opcode is Opcode.MUL:
            out.value = (self._signed(ai) * self._signed(bi)) & _WORD
        elif opcode in (Opcode.DIV, Opcode.REM):
            trap_lanes = bi == 0
            self._demote_divergent(trap_lanes)
            if trap_lanes[0]:
                out.trap = True
                out.trapkind = _TRAP_CODES[TrapKind.DIVIDE_BY_ZERO]
            else:
                sa = self._signed(ai)
                sb = self._signed(bi)
                safe = np.where(sb == 0, np.int64(1), sb)
                # Matches the scalar semantics bit-for-bit: execute_operation
                # computes int(a / b), i.e. float64 division truncated toward
                # zero, and float64 is exact for all 32-bit operand pairs.
                quotient = np.trunc(sa / safe).astype(np.int64)
                if opcode is Opcode.DIV:
                    out.value = quotient & _WORD
                else:
                    out.value = (sa - quotient * safe) & _WORD
        elif opcode is Opcode.AND:
            out.value = ai & bi
        elif opcode is Opcode.OR:
            out.value = ai | bi
        elif opcode is Opcode.XOR:
            out.value = ai ^ bi
        elif opcode is Opcode.SLL:
            out.value = (ai << (bi & 31)) & _WORD
        elif opcode is Opcode.SRL:
            out.value = ai >> (bi & 31)
        elif opcode is Opcode.SRA:
            out.value = (self._signed(ai) >> (bi & 31)) & _WORD
        elif opcode is Opcode.SLT:
            out.value = (self._signed(ai) < self._signed(bi)).astype(np.int64)
        elif opcode is Opcode.SLTU:
            out.value = (ai < bi).astype(np.int64)
        elif opcode is Opcode.ADDI:
            out.value = (ai + imm) & _WORD
        elif opcode is Opcode.ANDI:
            out.value = ai & (imm & _WORD)
        elif opcode is Opcode.ORI:
            out.value = ai | (imm & _WORD)
        elif opcode is Opcode.XORI:
            out.value = ai ^ (imm & _WORD)
        elif opcode is Opcode.SLTI:
            out.value = (self._signed(ai) < imm).astype(np.int64)
        elif opcode is Opcode.SLLI:
            out.value = (ai << (imm & 31)) & _WORD
        elif opcode is Opcode.SRLI:
            out.value = ai >> (imm & 31)
        elif opcode is Opcode.SRAI:
            out.value = (self._signed(ai) >> (imm & 31)) & _WORD
        elif opcode is Opcode.LUI:
            out.value = (imm << LUI_SHIFT) & _WORD
        elif opcode in (Opcode.LW, Opcode.LB):
            addresses = (ai + imm) & _WORD
            self._demote_divergent(addresses)
            out.mem_addr = int(addresses[0])
        elif opcode in (Opcode.SW, Opcode.SB):
            addresses = (ai + imm) & _WORD
            self._demote_divergent(addresses)
            out.mem_addr = int(addresses[0])
            out.store_col = b
        elif opcode in _BRANCH_OPCODES:
            if opcode is Opcode.BEQ:
                taken = ai == bi
            elif opcode is Opcode.BNE:
                taken = ai != bi
            elif opcode is Opcode.BLT:
                taken = self._signed(ai) < self._signed(bi)
            elif opcode is Opcode.BGE:
                taken = self._signed(ai) >= self._signed(bi)
            elif opcode is Opcode.BLTU:
                taken = ai < bi
            else:  # BGEU
                taken = ai >= bi
            self._demote_divergent(taken)
            out.taken = bool(taken[0])
            out.target = (pc + 4 + 4 * imm) & _WORD
            out.is_branch = True
        elif opcode is Opcode.JAL:
            out.value = (pc + 4) & _WORD
            out.taken = True
            out.target = (4 * imm) & _WORD
        elif opcode is Opcode.JALR:
            targets = ((ai + imm) & _WORD) & ~0x3
            self._demote_divergent(targets)
            out.value = (pc + 4) & _WORD
            out.taken = True
            out.target = int(targets[0])
        elif opcode is Opcode.OUT:
            out.out_col = a
        elif opcode in (Opcode.HALT, Opcode.NOP):
            pass
        elif opcode is Opcode.ASSERT_EQ:
            trap_lanes = ai != bi
            self._demote_divergent(trap_lanes)
            if trap_lanes[0]:
                out.trap = True
                out.trapkind = _TRAP_CODES[TrapKind.SOFTWARE_ASSERTION]
        elif opcode is Opcode.ASSERT_RANGE:
            trap_lanes = ai > bi
            self._demote_divergent(trap_lanes)
            if trap_lanes[0]:
                out.trap = True
                out.trapkind = _TRAP_CODES[TrapKind.SOFTWARE_ASSERTION]
        else:
            # Mirrors execute_operation's terminal ExecuteTrap for opcodes
            # with no compute semantics.
            out.illegal = True
        return out

    @staticmethod
    def _signed(values: np.ndarray) -> np.ndarray:
        """Sign-extend 32-bit values held in int64 lanes (branch-free)."""
        return values - ((values >> 31) << 32)

    def _stage_execute_to_memory(self, execute: _ExecOutcome | None) -> bool:
        c = self._ctrl
        if not c["e.valid"]:
            c["m.valid"] = 0
            return False
        c["m.op"] = c["e.op"]
        c["m.rd"] = c["e.rd"]
        c["m.trap"] = c["e.trap"]
        c["m.trapkind"] = c["e.trapkind"]
        c["m.valid"] = 1
        c["m.branch_taken"] = 0
        redirect = False
        if not c["e.trap"]:
            assert execute is not None
            if execute.illegal or execute.trap:
                c["m.trap"] = 1
                c["m.trapkind"] = (execute.trapkind if execute.trap
                                   else _TRAP_CODES[TrapKind.ILLEGAL_INSTRUCTION])
            else:
                self._view["m.result"][:] = execute.value
                if execute.mem_addr is not None:
                    self._cset("m.addr", execute.mem_addr)
                if execute.store_col is not None:
                    self._view["m.storeval"][:] = execute.store_col
                if execute.out_col is not None:
                    self._view["m.storeval"][:] = execute.out_col
                if execute.is_branch:
                    self._predictor_update(c["e.pc"], execute.taken)
                if execute.taken:
                    redirect = True
                    c["m.branch_taken"] = 1
                    self.redirect_target = execute.target
        c["e.valid"] = 0
        return redirect

    def _predictor_update(self, pc: int, taken: bool) -> None:
        """Vectorised :meth:`BimodalPredictor.update` (per-lane history)."""
        table = self._view["f.bp.table"]
        history = self._view["f.bp.history"]
        index = (np.uint64(pc >> 2) ^ history) % self._predictor_entries
        shift = _U2 * index
        counter = (table >> shift) & _U3
        if taken:
            counter = np.minimum(counter + _U1, _U3)
        else:
            counter = np.maximum(counter, _U1) - _U1
        table &= ~(_U3 << shift)
        table |= counter << shift
        history <<= _U1
        if taken:
            history |= _U1
        history &= self._history_mask

    def _hazard_destinations(self) -> set[int]:
        c = self._ctrl
        destinations: set[int] = set()
        for prefix in ("m", "x", "w"):
            if c[f"{prefix}.valid"] and not c[f"{prefix}.trap"]:
                info = _INFO_BY_INT.get(c[f"{prefix}.op"])
                if info is not None and info.writes_rd:
                    rd = c[f"{prefix}.rd"]
                    if rd != 0:
                        destinations.add(rd)
        return destinations

    def _stage_regaccess_to_execute(self, redirect: bool) -> bool:
        c = self._ctrl
        if redirect or not c["a.valid"]:
            c["e.valid"] = 0
            if redirect:
                c["a.valid"] = 0
            return False
        info = _INFO_BY_INT.get(c["a.op"])
        if info is not None and not c["a.trap"]:
            hazards = self._hazard_destinations()
            if hazards:
                if ((info.reads_rs1 and c["a.rs1"] in hazards)
                        or (info.reads_rs2 and c["a.rs2"] in hazards)):
                    c["e.valid"] = 0
                    return True
        c["e.op"] = c["a.op"]
        c["e.rd"] = c["a.rd"]
        c["e.imm"] = c["a.imm"]
        c["e.pc"] = c["a.pc"]
        c["e.trap"] = c["a.trap"]
        c["e.trapkind"] = c["a.trapkind"]
        self._view["e.rs1val"][:] = self.regs[:, c["a.rs1"] & 0x1F]
        self._view["e.rs2val"][:] = self.regs[:, c["a.rs2"] & 0x1F]
        c["e.valid"] = 1
        c["a.valid"] = 0
        return False

    def _stage_decode_to_regaccess(self, redirect: bool, stalled: bool) -> None:
        c = self._ctrl
        if stalled:
            return
        if redirect or not c["d.valid"]:
            c["a.valid"] = 0
            if redirect:
                c["d.valid"] = 0
            return
        word = c["d.inst"]
        c["a.pc"] = c["d.pc"]
        c["a.valid"] = 1
        c["a.trap"] = 0
        c["a.trapkind"] = 0
        if c["d.fetchfault"]:
            c["a.trap"] = 1
            c["a.trapkind"] = _TRAP_CODES[TrapKind.FETCH_FAULT]
            c["a.op"] = 0
            c["a.rd"] = 0
            c["a.rs1"] = 0
            c["a.rs2"] = 0
            c["a.imm"] = 0
            c["d.valid"] = 0
            return
        fields = self._decode_cache.get(word, _MISSING)
        if fields is _MISSING:
            try:
                instruction = decode_instruction(word)
            except EncodingError:
                fields = None
            else:
                fields = (int(instruction.opcode), instruction.rd,
                          instruction.rs1, instruction.rs2, instruction.imm)
            self._decode_cache[word] = fields
        if fields is None:
            c["a.trap"] = 1
            c["a.trapkind"] = _TRAP_CODES[TrapKind.ILLEGAL_INSTRUCTION]
            c["a.op"] = 0
            c["a.rd"] = 0
            c["a.rs1"] = 0
            c["a.rs2"] = 0
            c["a.imm"] = 0
        else:
            self._cset("a.op", fields[0])
            self._cset("a.rd", fields[1])
            self._cset("a.rs1", fields[2])
            self._cset("a.rs2", fields[3])
            self._cset("a.imm", fields[4])
        c["d.valid"] = 0

    def _stage_fetch_to_decode(self, redirect: bool, stalled: bool) -> None:
        c = self._ctrl
        if stalled:
            return
        if redirect:
            c["d.valid"] = 0
            self._cset("f.pc", self.redirect_target)
            self._cset("f.npc", self.redirect_target + WORD_BYTES)
            return
        pc = c["f.pc"]
        word = self._fetch_cache.get(pc, _MISSING)
        if word is _MISSING:
            instruction = self._program.instruction_at(pc)
            word = (None if instruction is None
                    else encode_instruction(instruction))
            self._fetch_cache[pc] = word
        if word is None:
            c["d.inst"] = 0
            self._cset("d.pc", pc)
            c["d.fetchfault"] = 1
            c["d.valid"] = 1
            return
        c["d.fetchfault"] = 0
        self._cset("d.inst", word)
        self._cset("d.pc", pc)
        c["d.valid"] = 1
        self._cset("f.pc", pc + WORD_BYTES)
        self._cset("f.npc", pc + 2 * WORD_BYTES)
        self._deltas["ic.ctrl.state"] += 1
        # The scalar stage also calls predictor.predict_taken(pc) for
        # branches -- a pure read with no state effect, so it is skipped.


def _noop_hook(core: BaseCore, cycle: int) -> None:
    return None


def execute_chunk_batched(spec: CampaignSpec, chunk: ChunkSpec,
                          obs: Instrumentation | None = None) -> ChunkResult:
    """Replay one chunk with streaming lockstep wavefronts where possible.

    Injections the wavefront cannot carry -- unsuppressed detecting
    protections (they raise events/recovery instead of flipping state), or
    any injection when the core/golden run is unsupported -- replay on the
    scalar path, so a batched chunk always produces the same outcomes and
    per-site tallies as a scalar one.

    Slot starvation (more simultaneous riders than ``batch_width``) defers
    injections to another sweep; a pass that finishes nothing sends the
    leftovers to the scalar path, so progress is guaranteed.

    ``obs`` is the chunk's instrumentation bundle (built by
    :func:`~repro.engine.executors.execute_chunk` from the spec's flags;
    ``None`` builds one here for direct callers).  Wavefront cycles land in
    phase counters -- lockstep lanes, shared reference, tandem windows,
    scalar fallback -- that partition ``replayed_cycles`` exactly.
    """
    if obs is None:
        obs = Instrumentation.configure(metrics=spec.metrics,
                                        trace=spec.trace)
    result = ChunkResult(index=chunk.index, metrics=obs.metrics)
    metrics = obs.metrics
    width = spec.batch_width
    batchable: list[PlannedInjection] = []
    scalar: list[PlannedInjection] = []
    if (width >= _MIN_WAVEFRONT_LANES and batched_replay_supported(spec.core)
            and _golden_batchable(spec.checkpointed.golden)):
        for planned in chunk.planned:
            if planned.protection.detects and not planned.suppressed:
                scalar.append(planned)
            else:
                batchable.append(planned)
    else:
        scalar = list(chunk.planned)
    if len(batchable) < _MIN_WAVEFRONT_LANES:
        scalar.extend(batchable)
        batchable = []
    with obs.tracer.span(SPAN_CHUNK, args={"index": chunk.index,
                                           "injections": len(chunk.planned),
                                           "batchable": len(batchable)}):
        if batchable:
            pool = _CorePool(spec.core)
            pending = [_LaneRecord(planned=planned) for planned in batchable]
            pending.sort(key=lambda record: record.planned.injection.cycle)
            while pending:
                wavefront = _StreamingWavefront(
                    spec.core, spec.program, spec.checkpointed,
                    spec.convergence, width, pool, obs=obs,
                    rolling=spec.rolling,
                    audit_interval=spec.audit_interval,
                    schedule_plans=spec.schedule_plans)
                with obs.tracer.span(PHASE_LOCKSTEP,
                                     args={"riders": len(pending)}) as span:
                    with metrics.timer(PHASE_LOCKSTEP):
                        finished, deferred = wavefront.sweep(pending)
                    span.note(finished=len(finished),
                              shared_cycles=wavefront.shared_cycles)
                metrics.inc(CYCLES_WAVEFRONT_SHARED, wavefront.shared_cycles)
                for record in finished:
                    metrics.inc(CYCLES_LOCKSTEP, record.lockstep_cycles)
                    metrics.inc(CYCLES_TANDEM, record.tandem_cycles)
                    metrics.inc(CYCLES_FALLBACK, record.scalar_cycles)
                    if record.evicted:
                        metrics.inc(COUNT_EVICTED)
                    _fold_replay(result, record.planned, record.replay, obs)
                if not finished:
                    # No lane made progress (degenerate plan, e.g. every
                    # injection beyond golden termination): fall back to
                    # scalar.
                    scalar.extend(record.planned for record in deferred)
                    break
                pending = deferred
        plans = spec.schedule_plans
        for planned in scalar:
            with obs.metrics.timer(PHASE_SCALAR_REPLAY):
                replay = replay_planned_injection(
                    spec.core, spec.program, planned, spec.checkpointed,
                    convergence=spec.convergence,
                    obs=obs if obs.tracer.enabled or obs.detailed else None,
                    rolling=spec.rolling,
                    audit_interval=spec.audit_interval,
                    plan=(plans.get(planned.injection.flat_index)
                          if plans else None))
            fold_scalar_replay(result, planned, replay, obs)
    if obs.tracer.enabled:
        result.trace_events = obs.tracer.events
    return result


def _fold_replay(result: ChunkResult, planned: PlannedInjection,
                 replay: Replay, obs: Instrumentation) -> None:
    """Fold one wavefront-finished replay into the chunk result.

    Phase *cycle* counters are the caller's job (the lane record partitions
    them); this folds the outcome plus the per-replay bookkeeping counters.
    """
    metrics = result.metrics
    metrics.inc(COUNT_REPLAYS)
    metrics.inc(CYCLES_FASTFORWARD, replay.resumed_from)
    if replay.converged_at is not None:
        metrics.inc(COUNT_CONVERGED)
        metrics.inc(CYCLES_SAVED, replay.saved_cycles)
    if obs.detailed:
        metrics.observe(HISTOGRAM_REPLAY_CYCLES, replay.simulated_cycles)
    result.record(planned.injection.flat_index, replay.outcome)
    result.observe_site(planned.injection.flat_index, replay.converged_at,
                        planned.injection.cycle)
