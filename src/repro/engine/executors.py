"""Pluggable streaming shard executors.

An executor takes one shared *payload* (pickled once per worker via the pool
initializer), a list of shard objects (each carrying a stable ``index``) and
a module-level shard function, and *streams* per-shard results back as they
complete, so consumers can fold aggregates incrementally instead of
materialising every raw result.  Two consumers ride this layer today: the
injection engine (payload = :class:`CampaignSpec`, shards =
:class:`ChunkSpec`) and the cross-layer exploration engine (payload =
``ExplorationSpec``, shards of (combination, target) work).

Two executors ship here:

* :class:`SerialExecutor` runs shards in order on the calling process --
  zero overhead, exact pre-engine semantics.
* :class:`ParallelExecutor` fans shards out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; each worker receives one
  pickled copy of the payload via the pool initializer and then only shard
  objects per task.  Shards carry deterministic derived seeds and
  pre-resolved stochastic draws, so results are independent of sharding,
  scheduling and completion order.  If process pools are unavailable (import
  restrictions, sandboxes), execution transparently falls back to serial for
  the shards that have not completed.

The campaign-specific ``run_chunks`` entry points remain as thin wrappers
binding the generic layer to :func:`execute_chunk`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Protocol, TypeVar

from repro.faultinjection.injector import (
    Injection,
    SiteProtection,
    build_injection_hook,
    injection_watchdog,
)
from repro.faultinjection.outcomes import OutcomeCategory, OutcomeCounts, classify_outcome
from repro.isa.program import Program
from repro.microarch.core import BaseCore, CycleHook
from repro.microarch.events import RunResult, TerminationReason
from repro.engine.checkpoint import CheckpointedGoldenRun

_SEED_STRIDE = 1_000_003
"""Multiplier for deriving per-chunk seeds from the campaign seed."""


@dataclass(frozen=True)
class PlannedInjection:
    """One injection with its protection semantics fully resolved.

    The suppression lottery is drawn centrally (in campaign-plan order, from
    the campaign seed) before sharding, which is what makes chunk execution
    order-independent: no worker ever touches a shared random stream.
    """

    injection: Injection
    protection: SiteProtection
    suppressed: bool


@dataclass
class CampaignSpec:
    """Everything a worker needs to replay injections for one campaign.

    ``convergence`` gates early termination of injected runs whose state
    fingerprint re-converges with the golden run's grid; set it to False to
    force full replay to termination (the pre-convergence baseline).

    ``batch_width`` >= 2 enables batched lockstep replay
    (:mod:`repro.engine.batch`): up to that many injections advance together
    as one vectorised wavefront on supported cores, with divergent runs
    evicted to the scalar path.  0 (the default) keeps every replay scalar.
    """

    core: BaseCore
    program: Program
    checkpointed: CheckpointedGoldenRun
    convergence: bool = True
    batch_width: int = 0


@dataclass
class ChunkSpec:
    """A shard of the injection plan.

    Attributes:
        index: position of the chunk in the plan (stable across executors).
        planned: the injections of this shard, in plan order.
        seed: deterministic per-chunk seed, ``campaign_seed * stride + index``.
            Replay itself is fully deterministic, but backends that add
            stochastic behaviour (sampling accelerators, approximate modes)
            must draw from this seed so results stay chunking-independent.
    """

    index: int
    planned: list[PlannedInjection]
    seed: int


@dataclass
class ChunkResult:
    """Streamed aggregate for one executed chunk.

    Attributes:
        outcomes / per_site: classification tallies.
        replayed_cycles: cycles actually simulated across the chunk's
            injected runs (after checkpoint fast-forward and convergence
            early-out).
        converged_count: injected runs terminated early because their state
            fingerprint re-converged with the golden grid.
        saved_cycles: cycles those early-outs skipped (golden termination
            cycle minus convergence cycle, summed).
        evicted_count: runs that diverged out of a lockstep wavefront and
            were finished on the scalar path (0 for scalar chunks).
        lockstep_cycles: per-run cycles advanced inside batched wavefronts
            (a subset of ``replayed_cycles``; 0 for scalar chunks).
    """

    index: int
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)
    per_site: dict[int, OutcomeCounts] = field(default_factory=dict)
    replayed_cycles: int = 0
    converged_count: int = 0
    saved_cycles: int = 0
    evicted_count: int = 0
    lockstep_cycles: int = 0

    def record(self, flat_index: int, outcome: OutcomeCategory) -> None:
        self.outcomes.record(outcome)
        self.per_site.setdefault(flat_index, OutcomeCounts()).record(outcome)


def shard_plan(planned: list[PlannedInjection], seed: int,
               chunk_size: int) -> list[ChunkSpec]:
    """Split a resolved plan into contiguous chunks with derived seeds."""
    chunk_size = max(1, chunk_size)
    return [ChunkSpec(index=index, planned=planned[start:start + chunk_size],
                      seed=seed * _SEED_STRIDE + index)
            for index, start in enumerate(range(0, len(planned), chunk_size))]


class _ConvergedEarly(Exception):
    """Raised from the convergence hook to abort a provably-decided replay."""

    def __init__(self, cycle: int):
        super().__init__(f"re-converged with the golden run at cycle {cycle}")
        self.cycle = cycle


def _convergence_hook(inner: CycleHook, injection_cycle: int,
                      checkpointed: CheckpointedGoldenRun) -> CycleHook:
    """Wrap the injection hook with the fingerprint convergence check.

    At every fingerprint-grid cycle strictly after the injection, the
    injected core's :meth:`~repro.microarch.core.BaseCore.state_fingerprint`
    is compared against the golden grid.  The fingerprint covers exactly the
    state a snapshot round-trips -- latches, microarchitecture, memory,
    emitted-output prefix, detection/recovery log -- so a match means the
    remainder of the run is bit-identical to the golden run by construction
    (a run that raised a detection, scheduled a recovery, or diverged in
    output can never match) and simulation can stop on the spot.
    """
    fingerprints = checkpointed.fingerprints
    interval = checkpointed.fingerprint_interval

    def hook(core: BaseCore, cycle: int) -> None:
        inner(core, cycle)
        if cycle > injection_cycle and cycle % interval == 0:
            expected = fingerprints.get(cycle)
            if expected is not None and core.state_fingerprint() == expected:
                raise _ConvergedEarly(cycle)

    return hook


@dataclass(frozen=True)
class Replay:
    """Everything one injected replay produced.

    Attributes:
        result: the injected :class:`RunResult` -- synthesized from the
            golden run when the replay converged early (bit-identical to what
            full simulation would have returned).
        outcome: classification of ``result`` against the golden run.
        resumed_from: cycle of the restored snapshot (0 = ran from reset).
        simulated_cycles: cycles actually simulated.
        converged_at: grid cycle at which the run re-converged with the
            golden run, or None when it simulated to termination.
    """

    result: RunResult
    outcome: OutcomeCategory
    resumed_from: int
    simulated_cycles: int
    converged_at: int | None = None

    @property
    def saved_cycles(self) -> int:
        """Cycles the convergence early-out skipped (0 for full replays)."""
        if self.converged_at is None:
            return 0
        return self.result.cycles - self.converged_at


def replay_planned_injection(core: BaseCore, program: Program,
                             planned: PlannedInjection,
                             checkpointed: CheckpointedGoldenRun,
                             convergence: bool = True) -> Replay:
    """Run one injection, fast-forwarding from the nearest golden snapshot
    and early-terminating once the run provably re-converges.

    Restoring the latest snapshot at or before the injection cycle is exact:
    the injection hook cannot have fired earlier, so the pre-injection prefix
    of the run is identical to the golden run the snapshot was taken from.

    With ``convergence`` enabled (and a fingerprint grid recorded), the
    injected core's state fingerprint is checked at grid cycles after the
    injection; on a match the remainder of the run is bit-identical to the
    golden run, so the replay stops and returns a synthesized copy of the
    golden :class:`RunResult` -- classified exactly as the full run would
    have been (VANISHED whenever the golden run terminated normally).
    Golden runs that hit the watchdog are never gated: their injected
    watchdog differs, so the tail is not reproducible from the grid.
    """
    golden = checkpointed.golden
    watchdog = injection_watchdog(golden)
    hook = build_injection_hook(planned.injection, planned.protection,
                                planned.suppressed)
    if (convergence and checkpointed.fingerprint_interval > 0
            and checkpointed.fingerprints
            and golden.reason is not TerminationReason.HANG):
        hook = _convergence_hook(hook, planned.injection.cycle, checkpointed)
    snapshot = checkpointed.nearest(planned.injection.cycle)
    resumed_from = 0 if snapshot is None else snapshot.cycle
    try:
        if snapshot is None:
            injected = core.run(program, max_cycles=watchdog, cycle_hook=hook)
        else:
            injected = core.resume(program, snapshot, max_cycles=watchdog,
                                   cycle_hook=hook)
    except _ConvergedEarly as converged:
        injected = replace(golden, output=list(golden.output),
                           detections=list(golden.detections))
        return Replay(result=injected,
                      outcome=classify_outcome(golden, injected),
                      resumed_from=resumed_from,
                      simulated_cycles=converged.cycle - resumed_from,
                      converged_at=converged.cycle)
    return Replay(result=injected, outcome=classify_outcome(golden, injected),
                  resumed_from=resumed_from,
                  simulated_cycles=injected.cycles - resumed_from)


def execute_chunk(spec: CampaignSpec, chunk: ChunkSpec) -> ChunkResult:
    """Replay every injection of one chunk and aggregate the outcomes.

    With ``spec.batch_width`` >= 2 the chunk is handed to the batched
    lockstep replay engine, which produces bit-identical outcomes (divergent
    and unbatchable runs are replayed by this scalar path internally).  The
    batched engine needs numpy; when it is unavailable the chunk falls back
    to scalar replay with a warning rather than failing the campaign.
    """
    if spec.batch_width >= 2:
        try:
            from repro.engine.batch import execute_chunk_batched
        except ImportError as error:
            import warnings

            warnings.warn(
                f"batched lockstep replay unavailable ({error}); replaying "
                f"serially", RuntimeWarning, stacklevel=2)
        else:
            return execute_chunk_batched(spec, chunk)
    result = ChunkResult(index=chunk.index)
    for planned in chunk.planned:
        replay = replay_planned_injection(spec.core, spec.program, planned,
                                          spec.checkpointed,
                                          convergence=spec.convergence)
        result.replayed_cycles += replay.simulated_cycles
        if replay.converged_at is not None:
            result.converged_count += 1
            result.saved_cycles += replay.saved_cycles
        result.record(planned.injection.flat_index, replay.outcome)
    return result


ShardT = TypeVar("ShardT")
ResultT = TypeVar("ResultT")

#: A module-level (picklable) function executing one shard against the
#: shared payload.  Results must expose a stable ``index`` mirroring their
#: shard's, so partially-completed pools can be finished serially.
ShardFunction = Callable[[Any, ShardT], ResultT]


class CampaignExecutor(Protocol):
    """Anything that can execute a sharded workload and stream aggregates."""

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        """Execute ``fn(payload, shard)`` per shard and yield each result, in
        any completion order."""
        ...  # pragma: no cover - protocol definition

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        """Campaign binding: :meth:`stream` with :func:`execute_chunk`."""
        ...  # pragma: no cover - protocol definition


class SerialExecutor:
    """Executes shards in order on the calling process."""

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        for shard in shards:
            yield fn(payload, shard)

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        return self.stream(spec, chunks, execute_chunk)


# ---------------------------------------------------------------------- workers
_WORKER_PAYLOAD: Any = None
_WORKER_FN: ShardFunction | None = None


def _init_worker(payload: Any, fn: ShardFunction) -> None:
    global _WORKER_PAYLOAD, _WORKER_FN
    _WORKER_PAYLOAD = payload
    _WORKER_FN = fn


def _run_shard_in_worker(shard: Any) -> Any:
    assert _WORKER_FN is not None, "worker used before initialisation"
    return _WORKER_FN(_WORKER_PAYLOAD, shard)


class ParallelExecutor:
    """Fans shards out over a process pool, streaming results as they finish.

    Attributes:
        workers: process count.  Defaults to ``os.cpu_count()`` capped at 8
            (shards are CPU-bound, so more processes than cores only add
            pickling overhead); an explicit count is honoured as given,
            which also lets tests exercise the pool on single-core machines.
    """

    def __init__(self, workers: int | None = None):
        import os

        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = max(1, workers)

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        if self.workers == 1 or len(shards) <= 1:
            yield from SerialExecutor().stream(payload, shards, fn)
            return
        done: set[int] = set()
        try:
            yield from self._stream_pooled(payload, shards, fn, done)
        except Exception as error:
            # Process pools can be unavailable (restricted environments) or
            # die mid-run; replay the shards that never completed serially so
            # the run still finishes with exact results.  Warn so benchmark/
            # throughput readings are not misattributed to parallel execution.
            import warnings

            warnings.warn(
                f"parallel shard execution failed ({type(error).__name__}: "
                f"{error}); finishing the remaining shards serially",
                RuntimeWarning, stacklevel=2)
            remaining = [shard for shard in shards if shard.index not in done]
            for shard in remaining:
                result = fn(payload, shard)
                done.add(result.index)
                yield result

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        return self.stream(spec, chunks, execute_chunk)

    def _stream_pooled(self, payload: Any, shards: list, fn: ShardFunction,
                       done: set[int]) -> Iterator:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(max_workers=min(self.workers, len(shards)),
                                 initializer=_init_worker,
                                 initargs=(payload, fn)) as pool:
            futures = [pool.submit(_run_shard_in_worker, shard)
                       for shard in shards]
            for future in as_completed(futures):
                result = future.result()
                done.add(result.index)
                yield result
