"""Pluggable streaming shard executors.

An executor takes one shared *payload* (pickled once per worker via the pool
initializer), a list of shard objects (each carrying a stable ``index``) and
a module-level shard function, and *streams* per-shard results back as they
complete, so consumers can fold aggregates incrementally instead of
materialising every raw result.  Two consumers ride this layer today: the
injection engine (payload = :class:`CampaignSpec`, shards =
:class:`ChunkSpec`) and the cross-layer exploration engine (payload =
``ExplorationSpec``, shards of (combination, target) work).

Two executors ship here:

* :class:`SerialExecutor` runs shards in order on the calling process --
  zero overhead, exact pre-engine semantics.
* :class:`ParallelExecutor` fans shards out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; each worker receives one
  pickled copy of the payload via the pool initializer and then only shard
  objects per task.  Shards carry deterministic derived seeds and
  pre-resolved stochastic draws, so results are independent of sharding,
  scheduling and completion order.  If process pools are unavailable (import
  restrictions, sandboxes), execution transparently falls back to serial for
  the shards that have not completed.

The campaign-specific ``run_chunks`` entry points remain as thin wrappers
binding the generic layer to :func:`execute_chunk`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Protocol, TypeVar

from repro.faultinjection.injector import (
    Injection,
    SiteProtection,
    build_injection_hook,
    injection_watchdog,
)
from repro.faultinjection.outcomes import OutcomeCategory, OutcomeCounts, classify_outcome
from repro.isa.program import Program
from repro.microarch.core import BaseCore, CycleHook
from repro.microarch.events import RunResult, TerminationReason
from repro.engine.checkpoint import CheckpointedGoldenRun
from repro.engine.schedule import SitePlan
from repro.obs import Instrumentation, MetricsRegistry
from repro.obs.metrics import NULL_METRICS
from repro.obs.phases import (
    COUNT_CONVERGED,
    COUNT_FINGERPRINT_CHECKS,
    COUNT_FINGERPRINT_COMPONENTS,
    COUNT_FINGERPRINT_FULL,
    COUNT_FINGERPRINT_ROLLING,
    COUNT_REPLAYS,
    CYCLES_FASTFORWARD,
    CYCLES_LOCKSTEP,
    CYCLES_SAVED,
    CYCLES_SCALAR,
    HISTOGRAM_CHECK_LATENCY_US,
    HISTOGRAM_REPLAY_CYCLES,
    PHASE_CONVERGENCE,
    PHASE_FASTFORWARD,
    PHASE_SCALAR_REPLAY,
    REPLAY_CYCLE_COUNTERS,
    SPAN_CHUNK,
)
from repro.obs.phases import COUNT_EVICTED as _COUNT_EVICTED

_SEED_STRIDE = 1_000_003
"""Multiplier for deriving per-chunk seeds from the campaign seed."""


@dataclass(frozen=True)
class PlannedInjection:
    """One injection with its protection semantics fully resolved.

    The suppression lottery is drawn centrally (in campaign-plan order, from
    the campaign seed) before sharding, which is what makes chunk execution
    order-independent: no worker ever touches a shared random stream.
    """

    injection: Injection
    protection: SiteProtection
    suppressed: bool


@dataclass
class CampaignSpec:
    """Everything a worker needs to replay injections for one campaign.

    ``convergence`` gates early termination of injected runs whose state
    fingerprint re-converges with the golden run's grid; set it to False to
    force full replay to termination (the pre-convergence baseline).

    ``batch_width`` >= 2 enables batched lockstep replay
    (:mod:`repro.engine.batch`): up to that many injections advance together
    as one vectorised wavefront on supported cores, with divergent runs
    evicted to the scalar path.  0 (the default) keeps every replay scalar.

    ``metrics`` / ``trace`` switch on the worker-side instrumentation
    (:mod:`repro.obs`): wall-clock phase timers + replay histograms, and
    Chrome-trace spans of the chunk -> replay lifecycle.  Phase *cycle
    counters* are always collected -- they back the campaign telemetry --
    and both flags off is the pre-observability fast path (no clock reads,
    no span objects).

    ``rolling`` switches convergence probes (and the batched engine's
    eviction probes) to :meth:`~repro.microarch.core.BaseCore.
    rolling_fingerprint`; ``audit_interval`` cross-checks every N-th
    rolling probe against the full digest (0 disables the audit).
    ``schedule_plans`` carries the engine's adaptive per-site probe
    schedules, keyed by flat fault-site index; None probes every grid
    cycle.  All three only shape *when and how* probes run -- outcomes are
    bit-identical regardless (see :mod:`repro.engine.schedule`).
    """

    core: BaseCore
    program: Program
    checkpointed: CheckpointedGoldenRun
    convergence: bool = True
    batch_width: int = 0
    metrics: bool = False
    trace: bool = False
    rolling: bool = False
    audit_interval: int = 0
    schedule_plans: dict[int, SitePlan] | None = None


@dataclass
class ChunkSpec:
    """A shard of the injection plan.

    Attributes:
        index: position of the chunk in the plan (stable across executors).
        planned: the injections of this shard, in plan order.
        seed: deterministic per-chunk seed, ``campaign_seed * stride + index``.
            Replay itself is fully deterministic, but backends that add
            stochastic behaviour (sampling accelerators, approximate modes)
            must draw from this seed so results stay chunking-independent.
    """

    index: int
    planned: list[PlannedInjection]
    seed: int


@dataclass
class ChunkResult:
    """Streamed aggregate for one executed chunk.

    The chunk's replay telemetry lives in one
    :class:`~repro.obs.MetricsRegistry` (``metrics``) keyed by the shared
    phase vocabulary of :mod:`repro.obs.phases` -- per-phase cycle counters
    always, wall-clock timers and histograms when the spec enabled them.
    The registry (and, when tracing, the chunk's span events) serializes
    through the normal pickle path back to the campaign process, where
    registries merge deterministically in chunk-index order.  The
    historical telemetry attributes (``replayed_cycles`` & co.) remain as
    read-only views over the counters.

    Attributes:
        outcomes / per_site: classification tallies.
        metrics: the chunk's metric registry (phase cycle counters et al.).
        trace_events: Chrome-trace events recorded during the chunk
            (empty unless the spec enabled tracing).
    """

    index: int
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)
    per_site: dict[int, OutcomeCounts] = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    trace_events: list[dict] = field(default_factory=list)
    # {flat_index: (converged, diverged, lag_cycles)} -- the adaptive
    # schedule's per-site observations.  Integer sums, so campaign-level
    # merging is independent of chunk partition and completion order.
    site_observations: dict[int, tuple[int, int, int]] = field(
        default_factory=dict)

    @property
    def replayed_cycles(self) -> int:
        """Cycles actually simulated across the chunk's injected runs."""
        value = self.metrics.value
        return sum(value(name) for name in REPLAY_CYCLE_COUNTERS)

    @property
    def converged_count(self) -> int:
        """Runs terminated early on golden-fingerprint convergence."""
        return self.metrics.value(COUNT_CONVERGED)

    @property
    def saved_cycles(self) -> int:
        """Cycles the convergence early-outs skipped."""
        return self.metrics.value(CYCLES_SAVED)

    @property
    def evicted_count(self) -> int:
        """Runs evicted from a lockstep wavefront to the scalar path."""
        return self.metrics.value(_COUNT_EVICTED)

    @property
    def lockstep_cycles(self) -> int:
        """Per-lane cycles advanced inside batched wavefronts."""
        return self.metrics.value(CYCLES_LOCKSTEP)

    def record(self, flat_index: int, outcome: OutcomeCategory) -> None:
        self.outcomes.record(outcome)
        self.per_site.setdefault(flat_index, OutcomeCounts()).record(outcome)

    def observe_site(self, flat_index: int, converged_at: int | None,
                     injection_cycle: int) -> None:
        """Record one replay's convergence behaviour for schedule learning."""
        converged, diverged, lag = self.site_observations.get(
            flat_index, (0, 0, 0))
        if converged_at is None:
            diverged += 1
        else:
            converged += 1
            lag += max(0, converged_at - injection_cycle)
        self.site_observations[flat_index] = (converged, diverged, lag)


def shard_plan(planned: list[PlannedInjection], seed: int,
               chunk_size: int) -> list[ChunkSpec]:
    """Split a resolved plan into contiguous chunks with derived seeds."""
    chunk_size = max(1, chunk_size)
    return [ChunkSpec(index=index, planned=planned[start:start + chunk_size],
                      seed=seed * _SEED_STRIDE + index)
            for index, start in enumerate(range(0, len(planned), chunk_size))]


def shard_plan_guided(planned: list[PlannedInjection], seed: int,
                      workers: int, min_chunk: int = 4) -> list[ChunkSpec]:
    """Split a plan into *guided* decreasing-size chunks for work stealing.

    Each chunk takes ``max(min_chunk, ceil(remaining / (workers * 2)))``
    injections: early chunks are large (low dispatch overhead while every
    worker is busy anyway), late chunks shrink toward ``min_chunk`` so the
    tail stays balanced even when replay costs are skewed -- the classic
    guided self-scheduling schedule.  Seeds follow the same
    ``seed * stride + index`` scheme as :func:`shard_plan`, and because every
    planned injection carries its pre-resolved lottery draw, the partition
    never affects campaign statistics (the engine's bit-exactness contract).

    ``min_chunk`` should be at least the batch width when batched lockstep
    replay is on, so late chunks still fill a wavefront.
    """
    workers = max(1, workers)
    min_chunk = max(1, min_chunk)
    chunks: list[ChunkSpec] = []
    start = 0
    while start < len(planned):
        remaining = len(planned) - start
        size = max(min_chunk, -(-remaining // (workers * 2)))
        index = len(chunks)
        chunks.append(ChunkSpec(index=index,
                                planned=planned[start:start + size],
                                seed=seed * _SEED_STRIDE + index))
        start += size
    return chunks


class _ConvergedEarly(Exception):
    """Raised from the convergence hook to abort a provably-decided replay."""

    def __init__(self, cycle: int):
        super().__init__(f"re-converged with the golden run at cycle {cycle}")
        self.cycle = cycle


def _convergence_hook(inner: CycleHook, injection_cycle: int,
                      checkpointed: CheckpointedGoldenRun,
                      metrics: MetricsRegistry = NULL_METRICS,
                      rolling: bool = False, audit_interval: int = 0,
                      plan: SitePlan | None = None) -> CycleHook:
    """Wrap the injection hook with the fingerprint convergence check.

    At fingerprint-grid cycles strictly after the injection, the injected
    core's digest is compared against the golden grid.  The fingerprint
    covers exactly the state a snapshot round-trips -- latches,
    microarchitecture, memory, emitted-output prefix, detection/recovery
    log -- so a match means the remainder of the run is bit-identical to
    the golden run by construction (a run that raised a detection,
    scheduled a recovery, or diverged in output can never match) and
    simulation can stop on the spot.

    ``rolling`` probes with :meth:`~repro.microarch.core.BaseCore.
    rolling_fingerprint` (O(dirty state) per probe); ``audit_interval`` > 0
    additionally recomputes the full digest on every N-th rolling probe and
    raises ``RuntimeError`` on disagreement -- the runtime leg of the
    rolling == full contract.  ``plan`` (a :class:`~repro.engine.schedule.
    SitePlan`) thins the probe grid adaptively; grid points it skips can
    only delay the early-out, never change the outcome.

    ``metrics`` counts the grid probes and, when timing is enabled, the
    per-probe latency (detailed instrumentation only; the default is the
    shared disabled registry, so the unmetered hook pays one no-op call per
    probe next to a state digest).
    """
    fingerprints = checkpointed.fingerprints
    interval = checkpointed.fingerprint_interval
    base_point = injection_cycle // interval
    rolling_probes = 0

    def hook(core: BaseCore, cycle: int) -> None:
        nonlocal rolling_probes
        inner(core, cycle)
        if cycle <= injection_cycle or cycle % interval:
            return
        expected = fingerprints.get(cycle)
        if expected is None:
            return
        if plan is not None \
                and not plan.should_check(cycle // interval - base_point):
            return
        metrics.inc(COUNT_FINGERPRINT_CHECKS)
        detailed = metrics.enabled
        if detailed:
            rehashed_before = core.fingerprint_rehash_count()
        timed = metrics.timing
        if timed:
            start = time.perf_counter()
        if rolling:
            digest = core.rolling_fingerprint()
        else:
            digest = core.state_fingerprint()
        if timed:
            elapsed = time.perf_counter() - start
            metrics.add_time(PHASE_CONVERGENCE, elapsed)
            metrics.observe_wall(HISTOGRAM_CHECK_LATENCY_US,
                                 int(elapsed * 1e6))
        if detailed:
            metrics.inc(COUNT_FINGERPRINT_ROLLING if rolling
                        else COUNT_FINGERPRINT_FULL)
            metrics.inc(COUNT_FINGERPRINT_COMPONENTS,
                        core.fingerprint_rehash_count() - rehashed_before)
        if rolling:
            rolling_probes += 1
            if audit_interval and rolling_probes % audit_interval == 0:
                if detailed:
                    metrics.inc(COUNT_FINGERPRINT_FULL)
                if digest != core.state_fingerprint():
                    raise RuntimeError(
                        f"rolling fingerprint diverged from the full digest "
                        f"at cycle {cycle}: a component cache went stale "
                        f"(state mutated outside the dirty-tracking path; "
                        f"see the state-coverage audit rule)")
        if digest == expected:
            raise _ConvergedEarly(cycle)

    return hook


@dataclass(frozen=True)
class Replay:
    """Everything one injected replay produced.

    Attributes:
        result: the injected :class:`RunResult` -- synthesized from the
            golden run when the replay converged early (bit-identical to what
            full simulation would have returned).
        outcome: classification of ``result`` against the golden run.
        resumed_from: cycle of the restored snapshot (0 = ran from reset).
        simulated_cycles: cycles actually simulated.
        converged_at: grid cycle at which the run re-converged with the
            golden run, or None when it simulated to termination.
    """

    result: RunResult
    outcome: OutcomeCategory
    resumed_from: int
    simulated_cycles: int
    converged_at: int | None = None

    @property
    def saved_cycles(self) -> int:
        """Cycles the convergence early-out skipped (0 for full replays)."""
        if self.converged_at is None:
            return 0
        return self.result.cycles - self.converged_at


def replay_planned_injection(core: BaseCore, program: Program,
                             planned: PlannedInjection,
                             checkpointed: CheckpointedGoldenRun,
                             convergence: bool = True,
                             obs: Instrumentation | None = None,
                             rolling: bool = False, audit_interval: int = 0,
                             plan: SitePlan | None = None) -> Replay:
    """Run one injection, fast-forwarding from the nearest golden snapshot
    and early-terminating once the run provably re-converges.

    Restoring the latest snapshot at or before the injection cycle is exact:
    the injection hook cannot have fired earlier, so the pre-injection prefix
    of the run is identical to the golden run the snapshot was taken from.

    With ``convergence`` enabled (and a fingerprint grid recorded), the
    injected core's state fingerprint is checked at grid cycles after the
    injection; on a match the remainder of the run is bit-identical to the
    golden run, so the replay stops and returns a synthesized copy of the
    golden :class:`RunResult` -- classified exactly as the full run would
    have been (VANISHED whenever the golden run terminated normally).
    Golden runs that hit the watchdog are never gated: their injected
    watchdog differs, so the tail is not reproducible from the grid.

    ``obs`` (an :class:`~repro.obs.Instrumentation`) adds a
    ``snapshot.fastforward`` span around the restore and fingerprint-probe
    counting; ``None`` is the uninstrumented path, byte-for-byte the
    pre-observability behaviour.
    """
    golden = checkpointed.golden
    watchdog = injection_watchdog(golden)
    hook = build_injection_hook(planned.injection, planned.protection,
                                planned.suppressed)
    if (convergence and checkpointed.fingerprint_interval > 0
            and checkpointed.fingerprints
            and golden.reason is not TerminationReason.HANG):
        probe_metrics = (obs.metrics if obs is not None and obs.detailed
                         else NULL_METRICS)
        hook = _convergence_hook(hook, planned.injection.cycle, checkpointed,
                                 metrics=probe_metrics, rolling=rolling,
                                 audit_interval=audit_interval, plan=plan)
    snapshot = checkpointed.nearest(planned.injection.cycle)
    resumed_from = 0 if snapshot is None else snapshot.cycle
    tracing = obs is not None and obs.tracer.enabled
    try:
        if snapshot is None:
            injected = core.run(program, max_cycles=watchdog, cycle_hook=hook)
        elif tracing:
            # resume() is restore + _run_loop; splitting it lets the
            # fast-forward phase carry its own span without changing what
            # runs (property-tested equal in tests/test_engine.py).
            with obs.tracer.span(PHASE_FASTFORWARD,
                                 args={"to_cycle": snapshot.cycle}):
                core.restore(program, snapshot)
            injected = core._run_loop(watchdog, hook)
        else:
            injected = core.resume(program, snapshot, max_cycles=watchdog,
                                   cycle_hook=hook)
    except _ConvergedEarly as converged:
        injected = replace(golden, output=list(golden.output),
                           detections=list(golden.detections))
        return Replay(result=injected,
                      outcome=classify_outcome(golden, injected),
                      resumed_from=resumed_from,
                      simulated_cycles=converged.cycle - resumed_from,
                      converged_at=converged.cycle)
    return Replay(result=injected, outcome=classify_outcome(golden, injected),
                  resumed_from=resumed_from,
                  simulated_cycles=injected.cycles - resumed_from)


def fold_scalar_replay(result: ChunkResult, planned: PlannedInjection,
                       replay: Replay, obs: Instrumentation) -> None:
    """Fold one scalar-path replay into a chunk result (outcome + metrics)."""
    metrics = result.metrics
    metrics.inc(COUNT_REPLAYS)
    metrics.inc(CYCLES_SCALAR, replay.simulated_cycles)
    metrics.inc(CYCLES_FASTFORWARD, replay.resumed_from)
    if replay.converged_at is not None:
        metrics.inc(COUNT_CONVERGED)
        metrics.inc(CYCLES_SAVED, replay.saved_cycles)
    if obs.detailed:
        metrics.observe(HISTOGRAM_REPLAY_CYCLES, replay.simulated_cycles)
    result.record(planned.injection.flat_index, replay.outcome)
    result.observe_site(planned.injection.flat_index, replay.converged_at,
                        planned.injection.cycle)


def execute_chunk(spec: CampaignSpec, chunk: ChunkSpec) -> ChunkResult:
    """Replay every injection of one chunk and aggregate the outcomes.

    With ``spec.batch_width`` >= 2 the chunk is handed to the batched
    lockstep replay engine, which produces bit-identical outcomes (divergent
    and unbatchable runs are replayed by this scalar path internally).  The
    batched engine needs numpy; when it is unavailable the chunk falls back
    to scalar replay with a warning rather than failing the campaign.

    Instrumentation is worker-local: the chunk builds one
    :class:`~repro.obs.Instrumentation` from the spec's ``metrics`` /
    ``trace`` flags, and everything it collects rides home inside the
    returned :class:`ChunkResult`.
    """
    obs = Instrumentation.configure(metrics=spec.metrics, trace=spec.trace)
    if spec.batch_width >= 2:
        try:
            from repro.engine.batch import execute_chunk_batched
        except ImportError as error:
            import warnings

            warnings.warn(
                f"batched lockstep replay unavailable ({error}); replaying "
                f"serially", RuntimeWarning, stacklevel=2)
        else:
            return execute_chunk_batched(spec, chunk, obs=obs)
    result = ChunkResult(index=chunk.index, metrics=obs.metrics)
    tracing = obs.tracer.enabled
    with obs.tracer.span(SPAN_CHUNK, args={"index": chunk.index,
                                           "injections": len(chunk.planned)}):
        for planned in chunk.planned:
            with obs.tracer.span(
                    PHASE_SCALAR_REPLAY,
                    args={"site": planned.injection.flat_index,
                          "cycle": planned.injection.cycle}) as span:
                with obs.metrics.timer(PHASE_SCALAR_REPLAY):
                    plans = spec.schedule_plans
                    replay = replay_planned_injection(
                        spec.core, spec.program, planned, spec.checkpointed,
                        convergence=spec.convergence,
                        obs=obs if tracing or obs.detailed else None,
                        rolling=spec.rolling,
                        audit_interval=spec.audit_interval,
                        plan=(plans.get(planned.injection.flat_index)
                              if plans else None))
                span.note(outcome=replay.outcome.name,
                          cycles=replay.simulated_cycles,
                          converged_at=replay.converged_at)
            fold_scalar_replay(result, planned, replay, obs)
    if tracing:
        checks = obs.metrics.value(COUNT_FINGERPRINT_CHECKS)
        if checks:
            obs.tracer.instant(PHASE_CONVERGENCE,
                               args={"checks": checks,
                                     "converged": result.converged_count})
        result.trace_events = obs.tracer.events
    return result


ShardT = TypeVar("ShardT")
ResultT = TypeVar("ResultT")

#: A module-level (picklable) function executing one shard against the
#: shared payload.  Results must expose a stable ``index`` mirroring their
#: shard's, so partially-completed pools can be finished serially.
ShardFunction = Callable[[Any, ShardT], ResultT]


class CampaignExecutor(Protocol):
    """Anything that can execute a sharded workload and stream aggregates."""

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        """Execute ``fn(payload, shard)`` per shard and yield each result, in
        any completion order."""
        ...  # pragma: no cover - protocol definition

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        """Campaign binding: :meth:`stream` with :func:`execute_chunk`."""
        ...  # pragma: no cover - protocol definition


class SerialExecutor:
    """Executes shards in order on the calling process."""

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        for shard in shards:
            yield fn(payload, shard)

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        return self.stream(spec, chunks, execute_chunk)


# ---------------------------------------------------------------------- workers
# audit: allow[module-mutable-state] pool-initializer slot: written exactly once per worker by _init_worker, before any shard runs
_WORKER_PAYLOAD: Any = None
# audit: allow[module-mutable-state] pool-initializer slot: written exactly once per worker by _init_worker, before any shard runs
_WORKER_FN: ShardFunction | None = None


def _init_worker(payload: Any, fn: ShardFunction) -> None:
    global _WORKER_PAYLOAD, _WORKER_FN
    _WORKER_PAYLOAD = payload
    _WORKER_FN = fn


def _run_shard_in_worker(shard: Any) -> Any:
    assert _WORKER_FN is not None, "worker used before initialisation"
    return _WORKER_FN(_WORKER_PAYLOAD, shard)


class ParallelExecutor:
    """Fans shards out over a process pool, streaming results as they finish.

    Attributes:
        workers: process count.  Defaults to ``os.cpu_count()`` capped at 8
            (shards are CPU-bound, so more processes than cores only add
            pickling overhead); an explicit count is honoured as given,
            which also lets tests exercise the pool on single-core machines.
        work_stealing: with True (the default) shards are dispatched
            pull-style -- the pool holds at most ``workers + 1`` in-flight
            shards and each worker takes the next shard the moment it
            finishes one, so a slow shard never strands pre-assigned work on
            its worker.  False submits every shard up front (the static
            schedule, kept for benchmarking the difference).  Either way
            results stream back in completion order; consumers that need
            determinism fold them by shard index.
    """

    def __init__(self, workers: int | None = None,
                 work_stealing: bool = True):
        import os

        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = max(1, workers)
        self.work_stealing = work_stealing

    def stream(self, payload: Any, shards: list, fn: ShardFunction) -> Iterator:
        if self.workers == 1 or len(shards) <= 1:
            yield from SerialExecutor().stream(payload, shards, fn)
            return
        done: set[int] = set()
        try:
            yield from self._stream_pooled(payload, shards, fn, done)
        except Exception as error:
            # Process pools can be unavailable (restricted environments) or
            # die mid-run; replay the shards that never completed serially so
            # the run still finishes with exact results.  Warn so benchmark/
            # throughput readings are not misattributed to parallel execution.
            import warnings

            warnings.warn(
                f"parallel shard execution failed ({type(error).__name__}: "
                f"{error}); finishing the remaining shards serially",
                RuntimeWarning, stacklevel=2)
            remaining = [shard for shard in shards if shard.index not in done]
            for shard in remaining:
                result = fn(payload, shard)
                done.add(result.index)
                yield result

    def run_chunks(self, spec: CampaignSpec,
                   chunks: list[ChunkSpec]) -> Iterator[ChunkResult]:
        return self.stream(spec, chunks, execute_chunk)

    def _stream_pooled(self, payload: Any, shards: list, fn: ShardFunction,
                       done: set[int]) -> Iterator:
        from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                        as_completed, wait)

        with ProcessPoolExecutor(max_workers=min(self.workers, len(shards)),
                                 initializer=_init_worker,
                                 initargs=(payload, fn)) as pool:
            if not self.work_stealing:
                futures = [pool.submit(_run_shard_in_worker, shard)
                           for shard in shards]
                for future in as_completed(futures):
                    result = future.result()
                    done.add(result.index)
                    yield result
                return
            # Pull-based dispatch: keep just enough shards in flight that no
            # worker idles between completions (one spare beyond the worker
            # count), and hand out the next queued shard per completion --
            # workers effectively steal from one shared queue.
            queue = iter(shards)
            pending = set()
            for shard in queue:
                pending.add(pool.submit(_run_shard_in_worker, shard))
                if len(pending) > self.workers:
                    break
            while pending:
                completed, pending = wait(pending,
                                          return_when=FIRST_COMPLETED)
                for _ in completed:
                    shard = next(queue, None)
                    if shard is None:
                        break
                    pending.add(pool.submit(_run_shard_in_worker, shard))
                for future in completed:
                    result = future.result()
                    done.add(result.index)
                    yield result
