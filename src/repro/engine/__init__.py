"""Checkpointed parallel injection engine.

The engine layers statistical injection campaigns on top of the core models'
snapshot/restore support:

* :mod:`repro.engine.checkpoint` -- golden runs recorded with periodic core
  snapshots, plus the process-wide golden-run cache shared across protection
  configurations;
* :mod:`repro.engine.artifacts` -- the content-addressed persistent
  golden-artifact store: checkpointed golden runs serialised to versioned,
  integrity-guarded on-disk blobs, making the golden cache two-tier
  (``EngineConfig(artifact_dir=...)``) so repeated processes and pool
  workers start warm;
* :mod:`repro.engine.executors` -- pluggable serial / process-pool executors
  that replay pre-resolved injection shards and stream aggregates back;
* :mod:`repro.engine.engine` -- :class:`InjectionEngine`, the campaign front
  door, and the engine-backed suite runner;
* :mod:`repro.engine.batch` -- batched lockstep replay: numpy-vectorised
  injection wavefronts behind the :attr:`EngineConfig.batch_width` knob.
  It is imported lazily (only when a campaign enables batching) so that the
  rest of the engine works on numpy-free installs.

The legacy :class:`repro.faultinjection.campaign.InjectionCampaign` API is a
thin shim over this package.
"""

from repro.engine.artifacts import (
    ArtifactStoreStats,
    GoldenArtifactStore,
    artifact_digest,
)
from repro.engine.checkpoint import (
    DEFAULT_MAX_CHECKPOINTS,
    DEFAULT_MAX_FINGERPRINTS,
    GOLDEN_RUN_CACHE,
    CheckpointedGoldenRun,
    GoldenCacheStats,
    GoldenRunCache,
    cache_for_artifact_dir,
    golden_run_key,
    record_checkpointed_golden,
)
from repro.engine.engine import (
    EngineConfig,
    InjectionEngine,
    run_suite_campaign,
)
from repro.faultinjection.campaign import CampaignResult
from repro.engine.executors import (
    CampaignExecutor,
    CampaignSpec,
    ChunkResult,
    ChunkSpec,
    ParallelExecutor,
    PlannedInjection,
    Replay,
    SerialExecutor,
    execute_chunk,
    replay_planned_injection,
    shard_plan,
    shard_plan_guided,
)

__all__ = [
    "DEFAULT_MAX_CHECKPOINTS",
    "DEFAULT_MAX_FINGERPRINTS",
    "GOLDEN_RUN_CACHE",
    "ArtifactStoreStats",
    "GoldenArtifactStore",
    "artifact_digest",
    "CheckpointedGoldenRun",
    "GoldenCacheStats",
    "GoldenRunCache",
    "cache_for_artifact_dir",
    "golden_run_key",
    "record_checkpointed_golden",
    "CampaignResult",
    "EngineConfig",
    "InjectionEngine",
    "run_suite_campaign",
    "CampaignExecutor",
    "CampaignSpec",
    "ChunkResult",
    "ChunkSpec",
    "ParallelExecutor",
    "PlannedInjection",
    "Replay",
    "SerialExecutor",
    "execute_chunk",
    "replay_planned_injection",
    "shard_plan",
    "shard_plan_guided",
]
